// Package client is a Go client for the silo network server (package
// server), speaking the length-prefixed binary protocol of package wire.
//
// A Client multiplexes requests over a small pool of TCP connections.
// Each connection pipelines: any number of goroutines may issue requests
// concurrently, requests are written back-to-back without waiting for
// responses, and the server answers in order, so one connection sustains
// many in-flight one-shot transactions. Calls block until their response
// arrives (closed loop per calling goroutine).
//
// All methods are safe for concurrent use. Returned byte slices are
// freshly owned by the caller.
package client

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"silo"
	"silo/wire"
)

// Sentinel errors mapped from server ERR responses; test with errors.Is.
// Each wraps the corresponding silo sentinel, so a check like
// errors.Is(err, silo.ErrNotFound) holds end to end — the same code works
// against an embedded DB and over the wire, with no string matching.
var (
	ErrNotFound  = fmt.Errorf("client: %w", silo.ErrNotFound)
	ErrKeyExists = fmt.Errorf("client: %w", silo.ErrKeyExists)
	ErrConflict  = fmt.Errorf("client: %w", silo.ErrConflict)
	ErrInvalid   = fmt.Errorf("client: %w", silo.ErrKeyInvalid)
	ErrNoTable   = fmt.Errorf("client: %w", silo.ErrNoTable)
	ErrNoIndex   = fmt.Errorf("client: %w", silo.ErrNoIndex)
	// ErrNotCovering reports a covering scan of an index that was declared
	// without an include list.
	ErrNotCovering = fmt.Errorf("client: %w", silo.ErrNotCovering)
	ErrBadValue    = errors.New("client: value too short to hold a counter")
	ErrClosed      = errors.New("client: connection closed")
)

// ServerError is a server-reported failure that does not map to a
// sentinel (internal and protocol errors).
type ServerError struct {
	Code wire.ErrCode
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("client: server error (%v): %s", e.Code, e.Msg)
}

func codeError(code wire.ErrCode, msg string) error {
	switch code {
	case wire.CodeNotFound:
		return ErrNotFound
	case wire.CodeKeyExists:
		return ErrKeyExists
	case wire.CodeConflict:
		return ErrConflict
	case wire.CodeInvalid:
		return ErrInvalid
	case wire.CodeBadValue:
		return ErrBadValue
	case wire.CodeNoTable:
		return ErrNoTable
	case wire.CodeNoIndex:
		return ErrNoIndex
	case wire.CodeNotCovering:
		return ErrNotCovering
	}
	return &ServerError{Code: code, Msg: msg}
}

// Options configures a Client.
type Options struct {
	// Conns is the connection pool size (default 1). Calls are spread
	// round-robin; more connections add parallelism on the server's
	// response path, while pipelining already overlaps requests on one.
	Conns int
	// MaxFrame caps accepted response payloads (default wire.MaxFrame).
	MaxFrame int
	// DialTimeout bounds each dial (default 5s).
	DialTimeout time.Duration
}

// Client is a pooled, pipelining connection to one server.
type Client struct {
	opts  Options
	conns []*conn
	next  atomic.Uint64

	mu     sync.Mutex
	closed bool
}

// Dial connects to a server.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.Conns <= 0 {
		opts.Conns = 1
	}
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = wire.MaxFrame
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	cl := &Client{opts: opts}
	for i := 0; i < opts.Conns; i++ {
		c, err := dialConn(addr, opts)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.conns = append(cl.conns, c)
	}
	return cl, nil
}

// Close closes all pooled connections. In-flight calls fail with
// ErrClosed.
func (cl *Client) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	cl.mu.Unlock()
	for _, c := range cl.conns {
		c.fail(ErrClosed)
	}
	return nil
}

func (cl *Client) conn() *conn {
	n := cl.next.Add(1)
	return cl.conns[n%uint64(len(cl.conns))]
}

func (cl *Client) roundTrip(req *wire.Request) (wire.Response, error) {
	return cl.conn().roundTrip(req, cl.opts.MaxFrame)
}

// ---------------------------------------------------------------------------
// Operations

// Get returns the value stored for key, or ErrNotFound.
func (cl *Client) Get(table string, key []byte) ([]byte, error) {
	resp, err := cl.roundTrip(&wire.Request{Ops: []wire.Op{
		{Kind: wire.KindGet, Table: table, Key: key},
	}})
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KindValue {
		return nil, unexpected(resp)
	}
	return resp.Value, nil
}

// Put replaces the value of an existing key (ErrNotFound if absent).
func (cl *Client) Put(table string, key, value []byte) error {
	return cl.expectOK(&wire.Request{Ops: []wire.Op{
		{Kind: wire.KindPut, Table: table, Key: key, Value: value},
	}})
}

// Insert stores a new key (ErrKeyExists if present).
func (cl *Client) Insert(table string, key, value []byte) error {
	return cl.expectOK(&wire.Request{Ops: []wire.Op{
		{Kind: wire.KindInsert, Table: table, Key: key, Value: value},
	}})
}

// Delete removes a key (ErrNotFound if absent).
func (cl *Client) Delete(table string, key []byte) error {
	return cl.expectOK(&wire.Request{Ops: []wire.Op{
		{Kind: wire.KindDelete, Table: table, Key: key},
	}})
}

// Add atomically adds delta to the big-endian counter in the first 8
// bytes of the value stored at key — a serializable read-modify-write in
// one round trip — and returns the new counter. Trailing value bytes are
// preserved.
func (cl *Client) Add(table string, key []byte, delta int64) (uint64, error) {
	resp, err := cl.roundTrip(&wire.Request{Ops: []wire.Op{
		{Kind: wire.KindAdd, Table: table, Key: key, Delta: delta},
	}})
	if err != nil {
		return 0, err
	}
	if resp.Kind != wire.KindValue || len(resp.Value) != 8 {
		return 0, unexpected(resp)
	}
	return beUint64(resp.Value), nil
}

// Scan returns up to limit key/value pairs in [lo, hi), in key order, as
// one serializable transaction. A nil or empty lo means the start of the
// table; a nil hi means its end; limit <= 0 requests the server's cap.
func (cl *Client) Scan(table string, lo, hi []byte, limit int) ([]wire.KV, error) {
	if len(lo) == 0 {
		lo = []byte{0} // smallest valid key: engine keys are non-empty
	}
	op := wire.Op{Kind: wire.KindScan, Table: table, Key: lo}
	if hi != nil {
		op.HasHi = true
		op.Hi = hi
	}
	if limit > 0 {
		op.Limit = uint32(limit)
	}
	resp, err := cl.roundTrip(&wire.Request{Ops: []wire.Op{op}})
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KindScanR {
		return nil, unexpected(resp)
	}
	return resp.Pairs, nil
}

// CreateIndex declares a secondary index named index over table, with a
// declarative fixed-segment key spec (the secondary key is the
// concatenation of the segments, each taken from the primary key or the
// row value). The server backfills existing rows before replying; from
// then on the index is maintained inside every transaction that writes the
// table. Creation is idempotent for an identical declaration.
func (cl *Client) CreateIndex(index, table string, unique bool, segs []wire.IndexSeg) error {
	return cl.expectOK(&wire.Request{Ops: []wire.Op{{
		Kind:   wire.KindCreateIndex,
		Index:  index,
		Table:  table,
		Unique: unique,
		Segs:   segs,
	}}})
}

// CreateCoveringIndex is CreateIndex for a covering index: the include
// segments name fixed-position row fields whose bytes ride in every index
// entry, so IndexScanCovering serves them without the server touching the
// primary table. The include list is part of the declaration — recovery
// on the server rejects a re-declaration whose include list no longer
// matches the logged entries.
func (cl *Client) CreateCoveringIndex(index, table string, unique bool, segs, include []wire.IndexSeg) error {
	return cl.expectOK(&wire.Request{Ops: []wire.Op{{
		Kind:   wire.KindCreateIndex,
		Index:  index,
		Table:  table,
		Unique: unique,
		Segs:   segs,
		Incs:   include,
	}}})
}

// DropIndex drops the named secondary index. The drop is logged DDL:
// after recovery the index stays dropped, and a later CreateIndex may
// reuse the name. Dropping an unknown name returns ErrNoIndex.
func (cl *Client) DropIndex(index string) error {
	return cl.expectOK(&wire.Request{Ops: []wire.Op{{
		Kind:  wire.KindDropIndex,
		Index: index,
	}}})
}

// Schema returns the server's schema catalog: every table (id, name) and
// every index declaration (uniqueness, key-spec segments with transforms,
// covering include lists, or an opaque marker for indexes declared
// embedded with a Go key function). One round trip reconstructs the full
// DDL state — what CreateIndex calls would reproduce it elsewhere.
func (cl *Client) Schema() (*wire.Schema, error) {
	resp, err := cl.roundTrip(&wire.Request{Ops: []wire.Op{{Kind: wire.KindSchema}}})
	if err != nil {
		return nil, err
	}
	if resp.Kind == wire.KindErr {
		return nil, codeError(resp.Code, resp.Msg)
	}
	if resp.Kind != wire.KindSchemaR || resp.Schema == nil {
		return nil, unexpected(resp)
	}
	return resp.Schema, nil
}

// Stats fetches one metrics snapshot from the server: engine commit and
// abort counters (with abort-reason and per-table breakdowns), commit-phase
// and WAL fsync latency histograms, group-commit batch sizes, index
// scan-resolution modes, checkpoint and recovery figures, and the server's
// own per-opcode request latencies. The snapshot arrives in the versioned
// binary form of the STATSR frame, decoded with strict validation; use
// its Value/Get accessors, or render it with WritePrometheus.
func (cl *Client) Stats() (*silo.ObsSnapshot, error) {
	resp, err := cl.roundTrip(&wire.Request{Ops: []wire.Op{{Kind: wire.KindStats}}})
	if err != nil {
		return nil, err
	}
	if resp.Kind == wire.KindErr {
		return nil, codeError(resp.Code, resp.Msg)
	}
	if resp.Kind != wire.KindStatsR || resp.Stats == nil {
		return nil, unexpected(resp)
	}
	return resp.Stats, nil
}

// IndexScan returns up to limit index entries with entry keys in [lo, hi),
// each resolved to its primary row, as one serializable transaction with
// phantom protection on both the index and the table (snapshot true
// instead reads a recent consistent snapshot). A nil or empty lo means the
// start of the index; a nil hi means its end; limit <= 0 requests the
// server's cap. Unknown index names return ErrNoIndex.
func (cl *Client) IndexScan(index string, lo, hi []byte, limit int, snapshot bool) ([]wire.IndexEntry, error) {
	return cl.indexScan(index, lo, hi, limit, snapshot, false)
}

// IndexScanCovering is IndexScan served entirely from a covering index's
// entry values: each returned entry's Value holds the index's included
// fields (in include-list order) instead of the full row, and the server
// never resolves the primary table. The index must have been created with
// an include list (ErrNotCovering otherwise).
func (cl *Client) IndexScanCovering(index string, lo, hi []byte, limit int, snapshot bool) ([]wire.IndexEntry, error) {
	return cl.indexScan(index, lo, hi, limit, snapshot, true)
}

func (cl *Client) indexScan(index string, lo, hi []byte, limit int, snapshot, covering bool) ([]wire.IndexEntry, error) {
	op := wire.Op{Kind: wire.KindIScan, Index: index, Key: lo, Snapshot: snapshot, Covering: covering}
	if hi != nil {
		op.HasHi = true
		op.Hi = hi
	}
	if limit > 0 {
		op.Limit = uint32(limit)
	}
	resp, err := cl.roundTrip(&wire.Request{Ops: []wire.Op{op}})
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KindIScanR {
		return nil, unexpected(resp)
	}
	return resp.Entries, nil
}

func (cl *Client) expectOK(req *wire.Request) error {
	resp, err := cl.roundTrip(req)
	if err != nil {
		return err
	}
	if resp.Kind != wire.KindOK {
		return unexpected(resp)
	}
	return nil
}

func unexpected(resp wire.Response) error {
	if resp.Kind == wire.KindErr {
		return codeError(resp.Code, resp.Msg)
	}
	return fmt.Errorf("client: unexpected %v response", resp.Kind)
}

func beUint64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

// ---------------------------------------------------------------------------
// Multi-op transactions

// Result is the per-op outcome of a committed transaction; Get and Add
// ops carry a value.
type Result = wire.TxnResult

// Txn accumulates operations to run as one serializable one-shot
// transaction in a single round trip. Either every op commits or none do;
// any op error (e.g. a Get of a missing key) aborts the whole
// transaction. A Txn is not safe for concurrent use and must not be
// reused after Exec.
type Txn struct {
	cl  *Client
	ops []wire.Op
}

// Txn starts an empty transaction.
func (cl *Client) Txn() *Txn { return &Txn{cl: cl} }

// Get reads a key; its value lands in the corresponding Result.
func (t *Txn) Get(table string, key []byte) *Txn {
	t.ops = append(t.ops, wire.Op{Kind: wire.KindGet, Table: table, Key: key})
	return t
}

// Put replaces the value of an existing key.
func (t *Txn) Put(table string, key, value []byte) *Txn {
	t.ops = append(t.ops, wire.Op{Kind: wire.KindPut, Table: table, Key: key, Value: value})
	return t
}

// Insert stores a new key.
func (t *Txn) Insert(table string, key, value []byte) *Txn {
	t.ops = append(t.ops, wire.Op{Kind: wire.KindInsert, Table: table, Key: key, Value: value})
	return t
}

// Delete removes a key.
func (t *Txn) Delete(table string, key []byte) *Txn {
	t.ops = append(t.ops, wire.Op{Kind: wire.KindDelete, Table: table, Key: key})
	return t
}

// Add adds delta to the counter in the first 8 bytes of the value at key;
// the new counter lands in the corresponding Result.
func (t *Txn) Add(table string, key []byte, delta int64) *Txn {
	t.ops = append(t.ops, wire.Op{Kind: wire.KindAdd, Table: table, Key: key, Delta: delta})
	return t
}

// Exec runs the transaction and returns one Result per op, in order.
func (t *Txn) Exec() ([]Result, error) {
	if len(t.ops) == 0 {
		return nil, nil
	}
	resp, err := t.cl.roundTrip(&wire.Request{Txn: true, Ops: t.ops})
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KindTxnR {
		return nil, unexpected(resp)
	}
	return resp.Results, nil
}

// Trace is Exec with span capture: the server executes the transaction
// traced and the response carries its span timeline — queue wait,
// statement execution across OCC retries, commit validation, log
// handoff, group-commit fsync wait (on durable servers the transaction
// is released only once its epoch is durable, so the timeline covers
// the true client-visible commit point), and result assembly — plus
// the commit TID and retry count. One TRACE round trip prices each
// stage of exactly this transaction; sample a fraction of production
// traffic through it to see where latency lives.
func (t *Txn) Trace() ([]Result, *silo.TxnSpans, error) {
	if len(t.ops) == 0 {
		return nil, nil, nil
	}
	resp, err := t.cl.roundTrip(&wire.Request{Txn: true, Trace: true, Ops: t.ops})
	if err != nil {
		return nil, nil, err
	}
	if resp.Kind != wire.KindTraceR || resp.Spans == nil {
		return nil, nil, unexpected(resp)
	}
	return resp.Results, resp.Spans, nil
}

// ---------------------------------------------------------------------------
// Connection

// conn is one pipelined TCP connection. The mutex makes
// write-frame + enqueue-waiter atomic, so the FIFO of waiters matches the
// order requests hit the wire; a single reader goroutine delivers
// responses to waiters in that order.
type conn struct {
	nc net.Conn

	mu      sync.Mutex
	bw      *bufio.Writer
	wbuf    []byte
	pending chan chan wire.Response
	broken  bool
	err     error
}

func dialConn(addr string, opts Options) (*conn, error) {
	nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &conn{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(chan chan wire.Response, 1024),
	}
	go c.readLoop(opts.MaxFrame)
	return c, nil
}

func (c *conn) roundTrip(req *wire.Request, maxFrame int) (wire.Response, error) {
	ch := make(chan wire.Response, 1)

	c.mu.Lock()
	if c.broken {
		err := c.err
		c.mu.Unlock()
		return wire.Response{}, err
	}
	buf, err := wire.AppendRequest(c.wbuf[:0], req)
	if err != nil {
		c.mu.Unlock()
		return wire.Response{}, err
	}
	c.wbuf = buf
	// The waiter must be enqueued before any request byte can reach the
	// wire, or a fast server could respond while no waiter is queued. The
	// send is non-blocking: hitting the cap means thousands of in-flight
	// requests on one connection, where failing fast (without poisoning
	// the connection — nothing was written) beats queueing deeper.
	select {
	case c.pending <- ch:
	default:
		c.mu.Unlock()
		return wire.Response{}, errors.New("client: pipeline depth exceeded")
	}
	_, err = c.bw.Write(buf)
	if err == nil {
		err = c.bw.Flush()
	}
	c.mu.Unlock()
	if err != nil {
		c.fail(err)
		return wire.Response{}, err
	}

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return wire.Response{}, err
	}
	return resp, nil
}

func (c *conn) readLoop(maxFrame int) {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		payload, err := wire.ReadFrame(br, maxFrame)
		if err != nil {
			c.fail(fmt.Errorf("client: read: %w", err))
			return
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			c.fail(fmt.Errorf("client: decode: %w", err))
			return
		}
		select {
		case ch := <-c.pending:
			ch <- resp
		default:
			c.fail(errors.New("client: response without matching request"))
			return
		}
	}
}

// fail marks the connection broken, closes it, and wakes every waiter.
// Waiters see a closed channel and report c.err.
func (c *conn) fail(err error) {
	c.mu.Lock()
	if c.broken {
		c.mu.Unlock()
		return
	}
	c.broken = true
	c.err = err
	c.mu.Unlock()
	c.nc.Close()
	for {
		select {
		case ch := <-c.pending:
			close(ch)
		default:
			return
		}
	}
}
