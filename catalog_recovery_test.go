package silo_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"silo"
)

// schemaDump is a comparable rendering of a DB's full schema: tables in id
// order and index declarations with every catalog-persisted attribute.
func schemaDump(db *silo.DB) []string {
	var out []string
	for _, t := range db.Tables() {
		out = append(out, fmt.Sprintf("table %d %s", t.ID, t.Name))
	}
	for _, ix := range db.Indexes() {
		out = append(out, fmt.Sprintf("index %s on=%s entry=%d unique=%v spec=%+v include=%+v",
			ix.Name, ix.On.Name, ix.Entries.ID, ix.Unique, ix.Spec, ix.Include))
	}
	return out
}

// dataDump renders every row of every table (the catalog included), so two
// recoveries can be compared bit for bit.
func dataDump(t *testing.T, db *silo.DB) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, tbl := range db.Tables() {
		if err := db.Run(0, func(tx *silo.Tx) error {
			return tx.Scan(tbl, []byte{0}, nil, func(k, v []byte) bool {
				out[fmt.Sprintf("%s/%x", tbl.Name, k)] = fmt.Sprintf("%x", v)
				return true
			})
		}); err != nil {
			t.Fatalf("dump %s: %v", tbl.Name, err)
		}
	}
	return out
}

// TestSelfDescribingRecoverySchemaEquivalence is the tentpole acceptance
// test: a database with a multi-table, multi-index schema — unique,
// non-unique, covering, and transform-bearing declarative specs, plus a
// dropped index — is recovered into fresh processes with ZERO
// re-declarations, both sequentially (RecoveryWorkers=1) and in parallel,
// and both must reconstruct the schema and the data byte-identically to
// each other and to the original. A checkpoint sits in the middle so the
// manifest schema section and the log's DDL suffix are both exercised.
func TestSelfDescribingRecoverySchemaEquivalence(t *testing.T) {
	dir := t.TempDir()
	db, err := silo.Open(silo.Options{
		Workers:       2,
		EpochInterval: time.Millisecond,
		SnapshotK:     2,
		Durability:    &silo.DurabilityOptions{Dir: dir, Loggers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	users := db.CreateTable("users")
	orders := db.CreateTable("orders")
	if _, err := db.CreateCoveringIndexSpec(0, users, "users_city", false, citySpec(), cityInclude()); err != nil {
		t.Fatal(err)
	}
	// Transform spec: owner little-endian in the row, order id inverted —
	// the order_cust pattern.
	orderSpec := []silo.IndexSeg{
		{FromValue: true, Off: 0, Len: 4, Xform: silo.IndexXformReverse},
		{Off: 0, Len: 4, Xform: silo.IndexXformInvert},
	}
	if _, err := db.CreateIndexSpec(0, orders, "orders_by_owner", true, orderSpec); err != nil {
		t.Fatal(err)
	}

	okey := func(i int) []byte { return binary.BigEndian.AppendUint32(nil, uint32(i)) }
	oval := func(owner int) []byte {
		v := make([]byte, 8)
		binary.LittleEndian.PutUint32(v, uint32(owner))
		return v
	}
	if err := db.RunDurable(0, func(tx *silo.Tx) error {
		for i := 0; i < 50; i++ {
			if err := tx.Insert(users, userKey(i), userRow(i%cities, 0, i)); err != nil {
				return err
			}
			if err := tx.Insert(orders, okey(i), oval(i%7)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Checkpoint so part of the schema travels in the manifest's schema
	// section; post-checkpoint DDL travels in the log.
	time.Sleep(20 * time.Millisecond)
	if _, err := db.Checkpoint(0); err != nil {
		t.Fatal(err)
	}

	// Post-checkpoint DDL: a new table + index, and a drop.
	audit := db.CreateTable("audit")
	if _, err := db.CreateIndexSpec(0, audit, "audit_tag", false, []silo.IndexSeg{{FromValue: true, Off: 0, Len: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndexSpec(0, orders, "orders_tmp", false, []silo.IndexSeg{{Off: 0, Len: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := db.DropIndex("orders_tmp"); err != nil {
		t.Fatal(err)
	}
	if err := db.RunDurable(1, func(tx *silo.Tx) error {
		for i := 0; i < 20; i++ {
			if err := tx.Insert(audit, okey(i), []byte(fmt.Sprintf("tg-%02d", i))); err != nil {
				return err
			}
		}
		return tx.Put(users, userKey(3), userRow(5, 9, 99))
	}); err != nil {
		t.Fatal(err)
	}

	wantSchema := schemaDump(db)
	wantData := dataDump(t, db)
	db.Close()

	recover := func(workers int) (*silo.DB, silo.RecoveryResult) {
		t.Helper()
		db2, err := silo.Open(silo.Options{
			Workers:       2,
			EpochInterval: time.Millisecond,
			Durability:    &silo.DurabilityOptions{Dir: dir, RecoveryWorkers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Zero re-declarations: the catalog reconstructs everything.
		res, err := db2.Recover()
		if err != nil {
			db2.Close()
			t.Fatalf("recover (%d workers) with zero re-declarations: %v", workers, err)
		}
		return db2, res
	}

	seq, _ := recover(1)
	defer seq.Close()
	par, _ := recover(8)
	defer par.Close()

	for name, db2 := range map[string]*silo.DB{"sequential": seq, "parallel": par} {
		if got := schemaDump(db2); !reflect.DeepEqual(got, wantSchema) {
			t.Fatalf("%s recovery schema mismatch:\n got %v\nwant %v", name, got, wantSchema)
		}
		if got := dataDump(t, db2); !reflect.DeepEqual(got, wantData) {
			t.Fatalf("%s recovery data mismatch (%d vs %d rows)", name, len(got), len(wantData))
		}
		// The dropped index stays dropped; its entry table id remains
		// reserved but empty.
		if db2.Index("orders_tmp") != nil {
			t.Fatalf("%s recovery resurrected a dropped index", name)
		}
		// Recovered indexes keep working: transformed scans serve
		// most-recent-first order and covering scans serve fields.
		if err := db2.Run(0, func(tx *silo.Tx) error {
			last := -1
			return silo.ScanIndex(tx, db2.Index("orders_by_owner"), []byte{0}, nil, func(sk, pk, v []byte) bool {
				owner := int(binary.BigEndian.Uint32(sk[:4]))
				if owner < last {
					t.Errorf("%s: owner order violated: %d after %d", name, owner, last)
				}
				last = owner
				return true
			})
		}); err != nil {
			t.Fatal(err)
		}
		n := 0
		if err := db2.Run(0, func(tx *silo.Tx) error {
			n = 0
			return silo.ScanIndexCovering(tx, db2.Index("users_city"), []byte{0}, nil, func(_, _, fields []byte) bool {
				if len(fields) != 4 {
					t.Errorf("%s: covering fields %d bytes, want 4", name, len(fields))
				}
				n++
				return true
			})
		}); err != nil {
			t.Fatal(err)
		}
		if n != 50 {
			t.Fatalf("%s: covering scan served %d entries, want 50", name, n)
		}
	}

	// A mismatched re-declaration must still be rejected by the constant-
	// time catalog comparison, naming the index.
	db3, err := silo.Open(silo.Options{
		Workers:       1,
		EpochInterval: time.Millisecond,
		Durability:    &silo.DurabilityOptions{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	u3 := db3.CreateTable("users")
	o3 := db3.CreateTable("orders")
	if _, err := db3.CreateCoveringIndexSpec(0, u3, "users_city", false, citySpec(), cityInclude()); err != nil {
		t.Fatal(err)
	}
	if _, err := db3.CreateIndexSpec(0, o3, "orders_by_owner", true, []silo.IndexSeg{
		{FromValue: true, Off: 0, Len: 4}, // transforms dropped: different spec
		{Off: 0, Len: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db3.Recover(); err == nil {
		t.Fatal("recovery accepted a re-declaration with different transforms")
	} else if !strings.Contains(err.Error(), "orders_by_owner") {
		t.Fatalf("rejection does not name the index: %v", err)
	}
}

// copyDurabilityDir snapshots a live durability directory the way a crash
// would leave it: log segments first (torn tails are fine), then
// checkpoint sets with their parts before the MANIFEST (the manifest is
// the commit point on the real disk too). Files deleted mid-copy by the
// daemon's truncation are skipped — the checkpoint covering them is
// always on disk before they go and is copied afterwards.
func copyDurabilityDir(t *testing.T, src, dst string) {
	t.Helper()
	cp := func(from, to string) {
		in, err := os.Open(from)
		if err != nil {
			return // vanished under the daemon: covered by a checkpoint
		}
		defer in.Close()
		out, err := os.Create(to)
		if err != nil {
			t.Fatal(err)
		}
		defer out.Close()
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts []string
	for _, e := range entries {
		if e.IsDir() {
			ckpts = append(ckpts, e.Name())
			continue
		}
		cp(filepath.Join(src, e.Name()), filepath.Join(dst, e.Name()))
	}
	sort.Strings(ckpts)
	for _, name := range ckpts {
		sub := filepath.Join(dst, name)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		parts, err := os.ReadDir(filepath.Join(src, name))
		if err != nil {
			continue // pruned under us
		}
		for _, p := range parts {
			if p.Name() == "MANIFEST" {
				continue
			}
			cp(filepath.Join(src, name, p.Name()), filepath.Join(sub, p.Name()))
		}
		cp(filepath.Join(src, name, "MANIFEST"), filepath.Join(sub, "MANIFEST"))
	}
}

// TestCrashMidDDLRecovery kills a database (by snapshotting its durability
// directory) between the catalog's index-create record becoming durable
// and the backfill completing, with the checkpoint daemon churning
// checkpoints and truncating segments throughout. Recovering each
// snapshot with zero re-declarations must yield one of exactly two
// states: the index absent (the create record was not durable yet), or
// the index present and complete — recovery rolled the backfill forward,
// and every row has exactly one consistent entry.
func TestCrashMidDDLRecovery(t *testing.T) {
	const rows = 8192
	dir := t.TempDir()
	db, err := silo.Open(silo.Options{
		Workers:       2,
		EpochInterval: time.Millisecond,
		SnapshotK:     2,
		Durability: &silo.DurabilityOptions{
			Dir:                  dir,
			Loggers:              2,
			SegmentBytes:         32 << 10,
			CheckpointInterval:   5 * time.Millisecond,
			CheckpointPartitions: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("rows")
	key := func(i int) []byte { return binary.BigEndian.AppendUint32(nil, uint32(i)) }
	for lo := 0; lo < rows; lo += 256 {
		if err := db.Run(0, func(tx *silo.Tx) error {
			for i := lo; i < lo+256; i++ {
				v := make([]byte, 8)
				binary.LittleEndian.PutUint32(v, uint32(i%97))
				if err := tx.Insert(tbl, key(i), v); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.RunDurable(0, func(tx *silo.Tx) error {
		_, err := tx.Get(tbl, key(0))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Start the DDL on worker 1 and snapshot the directory while the
	// backfill runs: as soon as the entry table appears, then twice more
	// shortly after, then once at completion.
	ddlDone := make(chan error, 1)
	go func() {
		_, err := db.CreateIndexSpec(1, tbl, "rows_ix", false,
			[]silo.IndexSeg{{FromValue: true, Off: 0, Len: 4, Xform: silo.IndexXformReverse}})
		ddlDone <- err
	}()

	var snaps []string
	snap := func(label string) {
		d := filepath.Join(t.TempDir(), label)
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		copyDurabilityDir(t, dir, d)
		snaps = append(snaps, d)
	}
	deadline := time.Now().Add(20 * time.Second)
	for db.Table("rows_ix") == nil {
		if time.Now().After(deadline) {
			t.Fatal("entry table never appeared")
		}
		time.Sleep(100 * time.Microsecond)
	}
	snap("early")
	time.Sleep(2 * time.Millisecond)
	snap("mid")
	time.Sleep(5 * time.Millisecond)
	snap("late")
	if err := <-ddlDone; err != nil {
		t.Fatalf("create index: %v", err)
	}
	if err := db.RunDurable(0, func(tx *silo.Tx) error {
		_, err := tx.Get(tbl, key(0))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	snap("complete")
	db.Close()

	for _, d := range snaps {
		label := filepath.Base(d)
		db2, err := silo.Open(silo.Options{
			Workers:       2,
			EpochInterval: time.Millisecond,
			Durability:    &silo.DurabilityOptions{Dir: d, RecoveryWorkers: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := db2.Recover()
		if err != nil {
			t.Fatalf("%s: recover: %v", label, err)
		}
		ix := db2.Index("rows_ix")
		if ix == nil {
			// The create record was not durable at the snapshot. The data
			// table must still be fully intact.
			n := 0
			if err := db2.Run(0, func(tx *silo.Tx) error {
				n = 0
				return tx.Scan(db2.Table("rows"), []byte{0}, nil, func(_, _ []byte) bool { n++; return true })
			}); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: index absent after recovery (create record beyond D); %d rows intact", label, n)
			if n == 0 {
				t.Fatalf("%s: rows table empty", label)
			}
			db2.Close()
			continue
		}
		if len(res.IndexesRolledForward) > 0 {
			t.Logf("%s: rolled forward %v", label, res.IndexesRolledForward)
		}
		// The index must exactly cover the table: entries == rows, every
		// entry's key re-derivable from its row.
		var nrows, nentries int
		if err := db2.Run(0, func(tx *silo.Tx) error {
			nrows, nentries = 0, 0
			if err := tx.Scan(db2.Table("rows"), []byte{0}, nil, func(_, _ []byte) bool { nrows++; return true }); err != nil {
				return err
			}
			return silo.ScanIndex(tx, ix, []byte{0}, nil, func(sk, pk, v []byte) bool {
				want := binary.LittleEndian.Uint32(v[:4])
				if got := binary.BigEndian.Uint32(sk[:4]); got != want {
					t.Errorf("%s: entry %x disagrees with row value %d", label, sk, want)
				}
				nentries++
				return true
			})
		}); err != nil {
			t.Fatal(err)
		}
		if nrows != nentries {
			t.Fatalf("%s: %d rows but %d entries after recovery", label, nrows, nentries)
		}
		t.Logf("%s: index complete after recovery (%d rows)", label, nrows)
		db2.Close()
	}

	// At least the final snapshot must recover the completed index.
	if !bytes.Contains([]byte(strings.Join(snaps, " ")), []byte("complete")) {
		t.Fatal("missing completion snapshot")
	}
}
