package server_test

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"silo"
	"silo/client"
	"silo/server"
)

// TestE2EBankInvariant is the end-to-end serializability harness of the
// networked front end: concurrent clients on loopback TCP issue
// conflicting one-shot transfer transactions against a shared account
// table while others audit the total balance with serializable scans. The
// sum is conserved by every committed transfer, so any snapshot a scan
// observes must total exactly accounts×initial — the same invariant
// pattern as internal/core/serializability_test.go, here crossing the
// wire protocol, the dispatch queue, and the per-worker executors. Run it
// with -race to check the whole path for data races.
func TestE2EBankInvariant(t *testing.T) {
	const (
		accounts = 64
		initial  = 1000
		clients  = 4
		txnsPer  = 1200
	)
	db, err := silo.Open(silo.Options{Workers: 4, EpochInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := server.New(db, server.Options{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	key := func(i int) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, uint64(i))
		return b
	}
	val := func(v uint64) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, v)
		return b
	}

	// Preload through the wire as multi-op transaction frames.
	loader, err := client.Dial(ln.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < accounts; lo += 16 {
		txn := loader.Txn()
		for i := lo; i < lo+16 && i < accounts; i++ {
			txn.Insert("accounts", key(i), val(initial))
		}
		if _, err := txn.Exec(); err != nil {
			t.Fatal(err)
		}
	}
	loader.Close()

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client owns its connections, as a real client process
			// would; two so round-robin multiplexing is exercised too.
			cl, err := client.Dial(ln.Addr().String(), client.Options{Conns: 2})
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			rng := uint64(c)*0x9E3779B97F4A7C15 + 1
			next := func(n int) int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int((rng >> 33) % uint64(n))
			}
			for r := 0; r < txnsPer; r++ {
				switch next(10) {
				case 0, 1, 2, 3, 4, 5, 6: // conflicting transfer
					from, to := next(accounts), next(accounts)
					if from == to {
						to = (to + 1) % accounts
					}
					amt := int64(next(50))
					if _, err := cl.Txn().
						Add("accounts", key(from), -amt).
						Add("accounts", key(to), amt).
						Exec(); err != nil {
						errc <- fmt.Errorf("client %d txn %d: transfer: %w", c, r, err)
						return
					}
				case 7: // serializable full-scan audit
					pairs, err := cl.Scan("accounts", nil, nil, 0)
					if err != nil {
						errc <- fmt.Errorf("client %d txn %d: scan: %w", c, r, err)
						return
					}
					if len(pairs) != accounts {
						errc <- fmt.Errorf("client %d txn %d: scan saw %d accounts", c, r, len(pairs))
						return
					}
					var total uint64
					for _, p := range pairs {
						total += binary.BigEndian.Uint64(p.Value)
					}
					// Balances may transiently wrap below zero (transfers
					// are unconditional), but the modular sum is conserved
					// exactly by every committed transfer.
					if total != accounts*initial {
						errc <- fmt.Errorf("client %d txn %d: scan total = %d, want %d",
							c, r, total, accounts*initial)
						return
					}
				case 8: // read one balance
					if _, err := cl.Get("accounts", key(next(accounts))); err != nil {
						errc <- fmt.Errorf("client %d txn %d: get: %w", c, r, err)
						return
					}
				case 9: // insert/delete churn on a second table
					k := []byte(fmt.Sprintf("audit-%d-%d", c, r))
					if err := cl.Insert("audit", k, []byte("x")); err != nil {
						errc <- fmt.Errorf("client %d txn %d: insert: %w", c, r, err)
						return
					}
					if r%2 == 0 {
						if err := cl.Delete("audit", k); err != nil {
							errc <- fmt.Errorf("client %d txn %d: delete: %w", c, r, err)
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Final audit through a fresh connection.
	cl, err := client.Dial(ln.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	pairs, err := cl.Scan("accounts", nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != accounts {
		t.Fatalf("final scan saw %d accounts, want %d", len(pairs), accounts)
	}
	var total uint64
	for _, p := range pairs {
		total += binary.BigEndian.Uint64(p.Value)
	}
	if total != accounts*initial {
		t.Fatalf("final total = %d, want %d", total, accounts*initial)
	}

	// The server really did execute everybody's transactions.
	if st := srv.Stats(); st.Requests < clients*txnsPer {
		t.Errorf("server executed %d requests, want >= %d", st.Requests, clients*txnsPer)
	}
	if stats := db.Stats(); stats.Commits < clients*txnsPer {
		t.Errorf("engine committed %d transactions, want >= %d", stats.Commits, clients*txnsPer)
	}
}

// TestE2EDurableServer runs transfers against a durability-enabled server,
// then recovers the log into a fresh database and checks the invariant
// survived: the network path composes with group commit and recovery.
func TestE2EDurableServer(t *testing.T) {
	const (
		accounts = 16
		initial  = 500
		clients  = 4
		txnsPer  = 150
	)
	dir := t.TempDir()
	db, err := silo.Open(silo.Options{
		Workers:       4,
		EpochInterval: time.Millisecond,
		Durability:    &silo.DurabilityOptions{Dir: dir, Loggers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Durability pins table IDs into the log; pre-create and disable
	// auto-creation as a durable deployment should.
	tbl := db.CreateTable("accounts")
	srv := server.New(db, server.Options{DisableAutoCreate: true})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	key := func(i int) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, uint64(i))
		return b
	}

	cl, err := client.Dial(ln.Addr().String(), client.Options{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	txn := cl.Txn()
	for i := 0; i < accounts; i++ {
		v := make([]byte, 8)
		binary.BigEndian.PutUint64(v, initial)
		txn.Insert("accounts", key(i), v)
	}
	if _, err := txn.Exec(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := uint64(c + 99)
			next := func(n int) int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int((rng >> 33) % uint64(n))
			}
			for r := 0; r < txnsPer; r++ {
				from, to := next(accounts), next(accounts)
				if from == to {
					continue
				}
				amt := int64(next(20))
				if _, err := cl.Txn().
					Add("accounts", key(from), -amt).
					Add("accounts", key(to), amt).
					Exec(); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cl.Close()
	srv.Close()

	// Push everything to the durable epoch, then recover fresh.
	if err := db.RunDurable(0, func(tx *silo.Tx) error {
		_, err := tx.Get(tbl, key(0))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := silo.Open(silo.Options{Durability: &silo.DurabilityOptions{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2 := db2.CreateTable("accounts")
	if _, err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	n := 0
	if err := db2.Run(0, func(tx *silo.Tx) error {
		total, n = 0, 0
		return tx.Scan(tbl2, key(0), nil, func(_, v []byte) bool {
			total += binary.BigEndian.Uint64(v)
			n++
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
	if n != accounts || total != accounts*initial {
		t.Fatalf("recovered %d accounts totalling %d; want %d totalling %d",
			n, total, accounts, accounts*initial)
	}
}
