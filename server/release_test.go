package server_test

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"silo"
	"silo/client"
	"silo/server"
	"silo/wire"
)

// durableOpts is a durability config tuned for tests: short epochs so
// group release cycles fast, honest fsync so a copied log directory is a
// valid crash image.
func durableOpts(dir string) silo.Options {
	return silo.Options{
		Workers:       2,
		EpochInterval: 2 * time.Millisecond,
		Durability:    &silo.DurabilityOptions{Dir: dir, Loggers: 2, Sync: true},
	}
}

// copyDir snapshots a log directory mid-run. Because every acked write's
// bytes were written and fsynced before its response was released, the
// copy is a valid crash image for everything acknowledged before the
// copy started (a torn tail beyond the last durable frame is fine —
// recovery skips it).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "crash-image")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue // checkpoints are not taken in these tests
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// recoverInto opens a fresh database over dir and recovers it.
func recoverInto(t *testing.T, dir string) *silo.DB {
	t.Helper()
	db, err := silo.Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Recover(); err != nil {
		db.Close()
		t.Fatalf("recover: %v", err)
	}
	t.Cleanup(db.Close)
	return db
}

// TestGroupAcksAreDurable hammers a durable group-ack server with
// concurrent writers, then treats a point-in-time copy of the log
// directory as a crash image: every acknowledged write must recover from
// it. This is the wire-level §4.10 contract — an OK frame means the
// write's epoch was already durable — checked without any clean
// shutdown.
func TestGroupAcksAreDurable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log")
	db, srv, cl := startServer(t, durableOpts(dir),
		server.Options{Acks: server.AckGroup, DisableAutoCreate: true},
		client.Options{Conns: 2})
	db.CreateTable("t")
	if got := srv.AckMode(); got != server.AckGroup {
		t.Fatalf("AckMode = %v, want group", got)
	}

	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%d-k%d", g, i)
				if err := cl.Insert("t", []byte(k), []byte(k)); err != nil {
					errs <- fmt.Errorf("insert %s: %w", k, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every insert above is acknowledged: a crash image taken now must
	// contain all of them.
	img := copyDir(t, dir)
	db2 := recoverInto(t, img)
	tbl := db2.Table("t")
	if tbl == nil {
		t.Fatal("table t not recovered")
	}
	for g := 0; g < writers; g++ {
		for i := 0; i < perWriter; i++ {
			k := fmt.Sprintf("w%d-k%d", g, i)
			err := db2.Run(0, func(tx *silo.Tx) error {
				v, err := tx.Get(tbl, []byte(k))
				if err != nil {
					return err
				}
				if string(v) != k {
					return fmt.Errorf("value = %q", v)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("acknowledged write %s lost in crash image: %v", k, err)
			}
		}
	}
}

// TestPerRequestAcksAreDurable is the same contract through the naive
// baseline path: the worker blocks per write until its epoch is durable.
func TestPerRequestAcksAreDurable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log")
	db, srv, cl := startServer(t, durableOpts(dir),
		server.Options{Acks: server.AckPerRequest, DisableAutoCreate: true},
		client.Options{})
	db.CreateTable("t")
	if got := srv.AckMode(); got != server.AckPerRequest {
		t.Fatalf("AckMode = %v, want per-request", got)
	}
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("k%d", i)
		if err := cl.Insert("t", []byte(k), []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	db2 := recoverInto(t, copyDir(t, dir))
	tbl := db2.Table("t")
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("k%d", i)
		if err := db2.Run(0, func(tx *silo.Tx) error {
			_, err := tx.Get(tbl, []byte(k))
			return err
		}); err != nil {
			t.Fatalf("acknowledged write %s lost: %v", k, err)
		}
	}
}

// TestGroupAcksPreserveWireOrder pipelines a parked write followed by an
// immediately-releasable read on one raw connection: the read's response
// must wait behind the write's durable release, never overtake it.
func TestGroupAcksPreserveWireOrder(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log")
	db, err := silo.Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.CreateTable("t")
	srv := server.New(db, server.Options{Acks: server.AckGroup, DisableAutoCreate: true})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))

	// Phase 1: a pipelined burst of inserts. Every response parks until
	// its epoch is durable, and they must still drain in request order.
	const n = 20
	var out []byte
	for i := 0; i < n; i++ {
		out, err = wire.AppendRequest(out, &wire.Request{Ops: []wire.Op{{
			Kind: wire.KindInsert, Table: "t",
			Key: []byte{byte(i)}, Value: []byte{byte(i)},
		}}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nc.Write(out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		payload, err := wire.ReadFrame(nc, 0)
		if err != nil {
			t.Fatalf("insert response %d: %v", i, err)
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil || resp.Kind != wire.KindOK {
			t.Fatalf("insert response %d = %+v, %v", i, resp, err)
		}
	}

	// Phase 2: interleave parked writes with immediately-releasable
	// reads on the same connection. Execution may reorder across workers,
	// but each read's response must still queue behind the parked write
	// sent before it — strict alternation OK, VALUE. (The reads hit the
	// phase-1 keys so both execution orders yield a value, old or new.)
	out = out[:0]
	for i := 0; i < n; i++ {
		out, err = wire.AppendRequest(out, &wire.Request{Ops: []wire.Op{{
			Kind: wire.KindPut, Table: "t",
			Key: []byte{byte(i)}, Value: []byte{byte(i), byte(i)},
		}}})
		if err != nil {
			t.Fatal(err)
		}
		out, err = wire.AppendRequest(out, &wire.Request{Ops: []wire.Op{{
			Kind: wire.KindGet, Table: "t", Key: []byte{byte(i)},
		}}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nc.Write(out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		payload, err := wire.ReadFrame(nc, 0)
		if err != nil {
			t.Fatalf("put response %d: %v", i, err)
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil || resp.Kind != wire.KindOK {
			t.Fatalf("put response %d = %+v, %v; a read's response overtook a parked write", i, resp, err)
		}
		payload, err = wire.ReadFrame(nc, 0)
		if err != nil {
			t.Fatalf("get response %d: %v", i, err)
		}
		resp, err = wire.DecodeResponse(payload)
		if err != nil || resp.Kind != wire.KindValue || len(resp.Value) == 0 || resp.Value[0] != byte(i) {
			t.Fatalf("get response %d = %+v, %v", i, resp, err)
		}
	}
}

// TestAckModesDegradeWithoutDurability: group and per-request acks need a
// durable epoch to wait for; on a MemSilo database the server falls back
// to immediate acks rather than wedging every write forever.
func TestAckModesDegradeWithoutDurability(t *testing.T) {
	for _, mode := range []server.AckMode{server.AckGroup, server.AckPerRequest} {
		_, srv, cl := startServer(t, silo.Options{}, server.Options{Acks: mode}, client.Options{})
		if got := srv.AckMode(); got != server.AckImmediate {
			t.Fatalf("AckMode(%v without durability) = %v, want immediate", mode, got)
		}
		if err := cl.Insert("t", []byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
}

// TestScanLimitOverCapRejected: a SCAN limit beyond the server's MaxScan
// is rejected with CodeInvalid, exactly like ISCAN, instead of the
// historical silent clamp (which returned fewer pairs than requested with
// no indication the range had more).
func TestScanLimitOverCapRejected(t *testing.T) {
	_, _, cl := startServer(t, silo.Options{}, server.Options{MaxScan: 4}, client.Options{})
	for i := 0; i < 8; i++ {
		if err := cl.Insert("s", []byte{byte('a' + i)}, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// At or under the cap: fine.
	if pairs, err := cl.Scan("s", nil, nil, 4); err != nil || len(pairs) != 4 {
		t.Fatalf("scan at cap: %d pairs, %v", len(pairs), err)
	}
	// Over the cap: rejected, not clamped.
	if _, err := cl.Scan("s", nil, nil, 5); !errors.Is(err, client.ErrInvalid) {
		t.Fatalf("scan over cap: %v, want ErrInvalid", err)
	}
	// No explicit limit still means "server cap", not an error.
	if pairs, err := cl.Scan("s", nil, nil, 0); err != nil || len(pairs) != 4 {
		t.Fatalf("uncapped scan: %d pairs, %v", len(pairs), err)
	}
}
