package server

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"silo"
	"silo/internal/trace"
	"silo/wire"
)

// traceCtx carries span capture through one request's execution. A nil
// context means the request runs untraced on the plain fast path; a
// non-nil context routes transactional work through DB.RunTraced, which
// times the commit phases into sp. durable is set for TRACE frames,
// whose timeline must cover the group-commit fsync wait (the true
// client-visible commit point on a durable server); slow-op capture
// traces everything else without the durability wait, so it prices the
// phases a normal request actually pays.
type traceCtx struct {
	sp      *silo.TxnSpans
	durable bool
}

// now reads the database's clock — the same clock the commit phases are
// timed on, so server-side spans (queue wait, respond) and engine-side
// spans (execute, validate, log) form one coherent timeline.
func (s *Server) now() time.Duration { return s.db.Store().Now() }

// run executes fn as a one-shot transaction on worker w, traced when tc
// is set. Untraced transactions go through the contention-aware backoff
// policy when one is configured (traced ones keep DB.RunTraced's own
// retry loop, which counts retries into the span timeline).
func (s *Server) run(w int, tc *traceCtx, fn func(tx *silo.Tx) error) error {
	if tc != nil {
		return s.db.RunTraced(w, tc.sp, tc.durable, fn)
	}
	if s.bo != nil {
		return s.bo.run(w, fn)
	}
	return s.db.Run(w, fn)
}

// opCounts is a frame's per-kind op breakdown, indexed by request kind.
type opCounts [int(wire.KindRequestMax) + 1]uint32

// String renders the non-zero counts, e.g. "{GET:3,PUT:2}"; empty when
// nothing was counted.
func (c *opCounts) String() string {
	var b []byte
	for k, n := range c {
		if n == 0 {
			continue
		}
		if b == nil {
			b = append(b, '{')
		} else {
			b = append(b, ',')
		}
		b = fmt.Appendf(b, "%s:%d", wire.Kind(k), n)
	}
	if b == nil {
		return ""
	}
	return string(append(b, '}'))
}

// slowOp is one captured slow operation: what ran, how long each stage
// took, and how it ended.
type slowOp struct {
	At     time.Duration // store-clock time the op completed
	Kind   wire.Kind     // frame kind (TXN for multi-op frames)
	Table  string        // table (or index) the frame wrote most; see slowAttr
	Tables int           // distinct tables (or indexes) the frame touched
	Ops    int           // ops in the frame
	Counts opCounts      // per-kind op breakdown
	Total  time.Duration // queue wait + execution, the client-visible latency
	Spans  silo.TxnSpans // stage timeline (zero stages for untraceable kinds)
	Err    string        // error text when the op failed, else ""
}

// slowCap bounds the recent-slow buffer; older captures are overwritten.
const slowCap = 64

// slowBuf is the bounded ring of recent slow operations. Captures are
// rare by construction (only ops beyond the threshold land here), so a
// mutex is fine.
type slowBuf struct {
	mu  sync.Mutex
	buf [slowCap]slowOp
	n   uint64 // total captured; buf[(n-1)%slowCap] is the newest
}

func (b *slowBuf) add(op slowOp) {
	b.mu.Lock()
	b.buf[b.n%slowCap] = op
	b.n++
	b.mu.Unlock()
}

// snapshot returns the surviving captures oldest first, plus the total
// ever captured (total − len(ops) were overwritten).
func (b *slowBuf) snapshot() (ops []slowOp, total uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.n
	keep := n
	if keep > slowCap {
		keep = slowCap
	}
	ops = make([]slowOp, 0, keep)
	for i := n - keep; i < n; i++ {
		ops = append(ops, b.buf[i%slowCap])
	}
	return ops, n
}

// tableNamer resolves table ids to names for flight-recorder rendering.
// It snapshots the current table set; ids created after the snapshot
// render numerically, which is fine for a debug view.
func (s *Server) tableNamer() trace.TableNamer {
	m := map[uint32]string{}
	for _, t := range s.db.Tables() {
		m[t.ID] = t.Name
	}
	return func(id uint32) string { return m[id] }
}

// writeSlowText renders the slow buffer for /debug/slow.
func writeSlowText(w io.Writer, ops []slowOp, total uint64, threshold time.Duration) {
	fmt.Fprintf(w, "slow ops: %d captured (threshold %s), newest last\n", total, threshold)
	if total > uint64(len(ops)) {
		fmt.Fprintf(w, "oldest %d overwritten\n", total-uint64(len(ops)))
	}
	for i := range ops {
		op := &ops[i]
		table := op.Table
		if op.Tables > 1 {
			// A multi-table frame names its dominant write table plus how
			// many more tables rode along.
			table = fmt.Sprintf("%s(+%d)", table, op.Tables-1)
		}
		fmt.Fprintf(w, "at=%-12s %-6s table=%s ops=%d", op.At, op.Kind, table, op.Ops)
		if breakdown := op.Counts.String(); breakdown != "" && (op.Ops > 1 || op.Kind == wire.KindTxn || op.Kind == wire.KindTrace) {
			fmt.Fprint(w, breakdown)
		}
		fmt.Fprintf(w, " total=%s", op.Total)
		if sp := &op.Spans; sp.Total() > 0 {
			fmt.Fprintf(w, " [%s]", sp)
			if sp.Retries > 0 {
				fmt.Fprintf(w, " retries=%d", sp.Retries)
			}
		}
		if op.Err != "" {
			fmt.Fprintf(w, " err=%q", op.Err)
		}
		fmt.Fprintln(w)
	}
}

// jsonSlowOp is the JSON shape of one slow-op capture.
type jsonSlowOp struct {
	AtNs      int64             `json:"at_ns"`
	Kind      string            `json:"kind"`
	Table     string            `json:"table,omitempty"`
	Tables    int               `json:"tables,omitempty"`
	Ops       int               `json:"ops"`
	OpCounts  map[string]uint32 `json:"op_counts,omitempty"`
	TotalNs   int64             `json:"total_ns"`
	QueueNs   int64             `json:"queue_ns"`
	ExecNs    int64             `json:"exec_ns"`
	ValidNs   int64             `json:"validate_ns"`
	LogNs     int64             `json:"log_ns"`
	FsyncNs   int64             `json:"fsync_ns"`
	RespondNs int64             `json:"respond_ns"`
	Retries   uint32            `json:"retries,omitempty"`
	TID       string            `json:"tid,omitempty"`
	Err       string            `json:"err,omitempty"`
}

// writeSlowJSON renders the slow buffer as a JSON document.
func writeSlowJSON(w io.Writer, ops []slowOp, total uint64, threshold time.Duration) error {
	doc := struct {
		Captured    uint64       `json:"captured"`
		ThresholdNs int64        `json:"threshold_ns"`
		Ops         []jsonSlowOp `json:"ops"`
	}{Captured: total, ThresholdNs: threshold.Nanoseconds(), Ops: []jsonSlowOp{}}
	for i := range ops {
		op := &ops[i]
		sp := &op.Spans
		j := jsonSlowOp{
			AtNs: op.At.Nanoseconds(), Kind: op.Kind.String(), Table: op.Table,
			Tables: op.Tables,
			Ops:    op.Ops, TotalNs: op.Total.Nanoseconds(),
			QueueNs: sp.Queue.Nanoseconds(), ExecNs: sp.Exec.Nanoseconds(),
			ValidNs: sp.Validate.Nanoseconds(), LogNs: sp.Log.Nanoseconds(),
			FsyncNs: sp.Fsync.Nanoseconds(), RespondNs: sp.Respond.Nanoseconds(),
			Retries: sp.Retries, Err: op.Err,
		}
		if sp.TID != 0 {
			j.TID = fmt.Sprintf("%x", sp.TID)
		}
		for k, n := range op.Counts {
			if n > 0 {
				if j.OpCounts == nil {
					j.OpCounts = make(map[string]uint32)
				}
				j.OpCounts[wire.Kind(k).String()] = n
			}
		}
		doc.Ops = append(doc.Ops, j)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
