package server

import (
	"strings"
	"testing"

	"silo/wire"
)

// TestLatIdxDistinctSlots proves the latency array gives every request
// kind its own slot. The historical [16] array indexed by the kind's low
// nibble, so any opcode ≥ 0x10 would have silently aliased onto an
// existing kind's histogram; sizing from wire.KindRequestMax and checking
// injectivity here turns that into a compile-or-test-time failure the day
// a new kind is added past the array.
func TestLatIdxDistinctSlots(t *testing.T) {
	bound := int(wire.KindRequestMax) + 1
	seen := make(map[int]wire.Kind)
	for k := wire.Kind(1); k <= wire.KindRequestMax; k++ {
		i := latIdx(k)
		if i < 0 || i >= bound {
			t.Fatalf("latIdx(%v) = %d, out of [0,%d)", k, i, bound)
		}
		if prev, dup := seen[i]; dup {
			t.Fatalf("latIdx aliases %v and %v onto slot %d", prev, k, i)
		}
		seen[i] = k
	}
	// Out-of-range kinds must not panic and must land in bounds.
	for _, k := range []wire.Kind{0, wire.KindRequestMax + 1, 0x81, 0xFF} {
		if i := latIdx(k); i < 0 || i >= bound {
			t.Fatalf("latIdx(%#x) = %d, out of [0,%d)", byte(k), i, bound)
		}
	}
}

// TestStatsKindsCoverNamedKinds keeps the STATS latency series in sync
// with the opcode space: every named request kind must be listed in
// statsKinds, or its latencies are recorded but never reported.
func TestStatsKindsCoverNamedKinds(t *testing.T) {
	listed := make(map[wire.Kind]bool, len(statsKinds))
	for _, k := range statsKinds {
		listed[k] = true
	}
	for k := wire.Kind(1); k <= wire.KindRequestMax; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			continue // unnamed gap in the opcode space
		}
		if !listed[k] {
			t.Errorf("request kind %v has no statsKinds entry; its latency histogram would be invisible", k)
		}
	}
}
