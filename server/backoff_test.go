package server

import (
	"testing"
	"time"

	"silo"
)

// backoff_test.go pins the contention-aware retry policy's decisions:
// when a retry waits at all, how the wait grows, where it caps, and how
// the hot set and the commit protocol's abort forensics feed it.

func backoffFixture(t *testing.T) (*silo.DB, *backoffPolicy) {
	t.Helper()
	db, err := silo.Open(silo.Options{Workers: 2, EpochInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	s := New(db, Options{Backoff: true})
	t.Cleanup(func() { s.Close() })
	return db, s.bo
}

// conflictOn forces a real commit-time conflict on key for worker 0 and
// returns the blamed key hash from DB.LastAbort — the same forensics the
// policy's delay decision reads.
func conflictOn(t *testing.T, db *silo.DB, tbl *silo.Table, key []byte) uint64 {
	t.Helper()
	err := db.RunNoRetry(0, func(tx *silo.Tx) error {
		if _, err := tx.Get(tbl, key); err != nil {
			return err
		}
		// A concurrent committed write between worker 0's read and its
		// commit fails read validation with key as the blamed key.
		if err := db.Run(1, func(tx2 *silo.Tx) error {
			return tx2.Put(tbl, key, []byte("conflicting write"))
		}); err != nil {
			return err
		}
		return tx.Put(tbl, key, []byte("losing write"))
	})
	if err != silo.ErrConflict {
		t.Fatalf("manufactured conflict returned %v, want ErrConflict", err)
	}
	_, hash, ok := db.LastAbort(0)
	if !ok {
		t.Fatal("commit-time conflict left no LastAbort forensics")
	}
	return hash
}

// TestBackoffDelaySchedule pins the ladder: incidental conflicts (not
// hot, early attempts) wait nothing; past escalateAfter the wait is an
// exponential step with jitter in [d/2, d); the cap bounds every wait.
func TestBackoffDelaySchedule(t *testing.T) {
	_, bo := backoffFixture(t)
	sh := &bo.workers[0]

	for attempt := 0; attempt < escalateAfter; attempt++ {
		if d := bo.delay(sh, 0, attempt); d != 0 {
			t.Errorf("attempt %d off the hot set waited %v, want 0", attempt, d)
		}
	}
	for attempt := escalateAfter; attempt < 24; attempt++ {
		nominal := backoffBase << min(attempt, 16)
		if nominal > backoffCap {
			nominal = backoffCap
		}
		for trial := 0; trial < 8; trial++ {
			d := bo.delay(sh, 0, attempt)
			if d < nominal/2 || d >= nominal {
				t.Fatalf("attempt %d waited %v, want jitter in [%v, %v)", attempt, d, nominal/2, nominal)
			}
			if d > backoffCap {
				t.Fatalf("attempt %d waited %v past the %v cap", attempt, d, backoffCap)
			}
		}
	}
}

// TestBackoffHotKeyEngagesEarly: a conflict blamed on a key in the hot
// set waits from the first retry, before the escalation threshold.
func TestBackoffHotKeyEngagesEarly(t *testing.T) {
	db, bo := backoffFixture(t)
	tbl := db.CreateTable("hot")
	if err := db.Run(0, func(tx *silo.Tx) error {
		return tx.Insert(tbl, []byte("contended"), []byte("v0"))
	}); err != nil {
		t.Fatal(err)
	}
	hash := conflictOn(t, db, tbl, []byte("contended"))

	sh := &bo.workers[0]
	if d := bo.delay(sh, 0, 0); d != 0 {
		t.Fatalf("blamed key not yet hot, first retry waited %v", d)
	}

	hot := map[uint64]struct{}{hash: {}}
	bo.hot.Store(&hot)
	d := bo.delay(sh, 0, 0)
	if d < backoffBase/2 || d >= backoffBase {
		t.Errorf("hot-key first retry waited %v, want jitter in [%v, %v)", d, backoffBase/2, backoffBase)
	}
	if bo.hotKeys() != 1 {
		t.Errorf("hotKeys() = %d, want 1", bo.hotKeys())
	}
}

// TestBackoffRunRetriesToCommit: run keeps retrying conflicts (counting
// them) and returns the eventual commit's nil — the policy changes
// pacing, never outcomes.
func TestBackoffRunRetriesToCommit(t *testing.T) {
	db, bo := backoffFixture(t)
	tbl := db.CreateTable("retry")
	if err := db.Run(0, func(tx *silo.Tx) error {
		return tx.Insert(tbl, []byte("k"), []byte("v0"))
	}); err != nil {
		t.Fatal(err)
	}

	fails := 2
	before := bo.workers[0].retries.Load()
	err := bo.run(0, func(tx *silo.Tx) error {
		if _, err := tx.Get(tbl, []byte("k")); err != nil {
			return err
		}
		if fails > 0 {
			fails--
			// A concurrent commit on the read key makes this attempt's
			// validation fail, exactly like live contention.
			if err := db.Run(1, func(tx2 *silo.Tx) error {
				return tx2.Put(tbl, []byte("k"), []byte("bump"))
			}); err != nil {
				return err
			}
		}
		return tx.Put(tbl, []byte("k"), []byte("winner"))
	})
	if err != nil {
		t.Fatalf("run = %v, want eventual commit", err)
	}
	if got := bo.workers[0].retries.Load() - before; got != 2 {
		t.Errorf("policy counted %d retries, want 2", got)
	}
	var v []byte
	if err := db.Run(0, func(tx *silo.Tx) error {
		b, err := tx.Get(tbl, []byte("k"))
		v = append(v[:0], b...)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if string(v) != "winner" {
		t.Errorf("final value %q, want %q", v, "winner")
	}
}
