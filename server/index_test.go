package server_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"silo"
	"silo/client"
	"silo/server"
	"silo/wire"
)

// row builds a fixed-offset test row: [city:4][rest...].
func row(city, rest string) []byte {
	v := make([]byte, 4, 4+len(rest))
	copy(v, city)
	return append(v, rest...)
}

// TestIndexOverTheWire drives the whole index lifecycle through frames:
// load rows, CREATE_INDEX (backfill), more writes (automatic maintenance),
// ISCAN resolving entries to rows, entry movement on update, and removal
// on delete.
func TestIndexOverTheWire(t *testing.T) {
	_, _, cl := startServer(t, silo.Options{}, server.Options{}, client.Options{})

	// Rows that exist before the index: the server must backfill them.
	for i, city := range []string{"AMS", "BER", "AMS"} {
		if err := cl.Insert("users", []byte(fmt.Sprintf("u%d", i)), row(city, "pre")); err != nil {
			t.Fatal(err)
		}
	}
	spec := []wire.IndexSeg{{FromValue: true, Off: 0, Len: 4}}
	if err := cl.CreateIndex("users_by_city", "users", false, spec); err != nil {
		t.Fatalf("create index: %v", err)
	}
	// Idempotent re-create.
	if err := cl.CreateIndex("users_by_city", "users", false, spec); err != nil {
		t.Fatalf("re-create index: %v", err)
	}

	// A row written after creation is maintained automatically.
	if err := cl.Insert("users", []byte("u3"), row("AMS", "post")); err != nil {
		t.Fatal(err)
	}

	ams := func() []wire.IndexEntry {
		t.Helper()
		entries, err := cl.IndexScan("users_by_city", []byte("AMS"), []byte("AMT"), 0, false)
		if err != nil {
			t.Fatalf("iscan: %v", err)
		}
		return entries
	}
	entries := ams()
	if len(entries) != 3 {
		t.Fatalf("AMS entries = %d, want 3", len(entries))
	}
	for _, e := range entries {
		if !bytes.Equal(e.SK, []byte("AMS\x00")) || !bytes.HasPrefix(e.Value, []byte("AMS")) {
			t.Fatalf("entry %q/%q resolved to %q", e.SK, e.PK, e.Value)
		}
	}

	// Update moves u0 out of AMS; delete removes u2.
	if err := cl.Put("users", []byte("u0"), row("OSL", "moved")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete("users", []byte("u2")); err != nil {
		t.Fatal(err)
	}
	if entries := ams(); len(entries) != 1 || string(entries[0].PK) != "u3" {
		t.Fatalf("after churn AMS entries = %+v", entries)
	}

	// Limit applies per scan; an oversized limit is rejected, not clamped.
	if entries, err := cl.IndexScan("users_by_city", nil, nil, 1, false); err != nil || len(entries) != 1 {
		t.Fatalf("limited iscan = %d entries, err %v", len(entries), err)
	}
	if _, err := cl.IndexScan("users_by_city", nil, nil, 1<<30, false); err == nil {
		t.Fatal("oversized iscan limit accepted")
	}

	// Direct writes to the entry table are refused (they would corrupt the
	// index); reads of it remain allowed.
	if err := cl.Insert("users_by_city", []byte("bogus"), []byte("u9")); err == nil {
		t.Fatal("direct entry-table write accepted")
	}
	if _, err := cl.Scan("users_by_city", nil, nil, 10); err != nil {
		t.Fatalf("entry-table read refused: %v", err)
	}
}

// TestCoveringIndexOverTheWire drives the covering lifecycle through
// frames: CREATE_INDEX with an include list, covering ISCANs serving
// included fields (never full rows), field freshness after updates, and
// the ErrNotCovering sentinel for a covering scan of an ordinary index.
func TestCoveringIndexOverTheWire(t *testing.T) {
	_, _, cl := startServer(t, silo.Options{}, server.Options{}, client.Options{})

	for i, city := range []string{"AMS", "BER", "AMS"} {
		if err := cl.Insert("users", []byte(fmt.Sprintf("u%d", i)), row(city, "pre")); err != nil {
			t.Fatal(err)
		}
	}
	spec := []wire.IndexSeg{{FromValue: true, Off: 0, Len: 4}}
	incs := []wire.IndexSeg{{FromValue: true, Off: 4, Len: 3}} // first 3 payload bytes
	if err := cl.CreateCoveringIndex("users_by_city", "users", false, spec, incs); err != nil {
		t.Fatalf("create covering index: %v", err)
	}
	// Idempotent re-create with the identical declaration; a different
	// include list is rejected.
	if err := cl.CreateCoveringIndex("users_by_city", "users", false, spec, incs); err != nil {
		t.Fatalf("re-create covering index: %v", err)
	}
	if err := cl.CreateCoveringIndex("users_by_city", "users", false, spec,
		[]wire.IndexSeg{{FromValue: true, Off: 4, Len: 5}}); err == nil {
		t.Fatal("re-create with a different include list accepted")
	}

	entries, err := cl.IndexScanCovering("users_by_city", []byte("AMS"), []byte("AMT"), 0, false)
	if err != nil {
		t.Fatalf("covering iscan: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("AMS covering entries = %d, want 2", len(entries))
	}
	for _, e := range entries {
		if string(e.Value) != "pre" {
			t.Fatalf("covering entry %q carries fields %q, want %q", e.PK, e.Value, "pre")
		}
	}

	// An update that changes an included field but not the secondary key
	// must refresh the entry value.
	if err := cl.Put("users", []byte("u0"), row("AMS", "new")); err != nil {
		t.Fatal(err)
	}
	entries, err = cl.IndexScanCovering("users_by_city", []byte("AMS"), []byte("AMT"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, e := range entries {
		got[string(e.PK)] = string(e.Value)
	}
	if got["u0"] != "new" || got["u2"] != "pre" {
		t.Fatalf("covering fields after update = %v", got)
	}

	// Covering scans of a non-covering index are refused with the typed
	// sentinel end to end.
	if err := cl.CreateIndex("users_plain", "users", false, spec); err != nil {
		t.Fatal(err)
	}
	_, err = cl.IndexScanCovering("users_plain", nil, nil, 0, false)
	if !errors.Is(err, client.ErrNotCovering) || !errors.Is(err, silo.ErrNotCovering) {
		t.Errorf("covering scan of plain index: %v does not match both sentinels", err)
	}
}

// TestIndexSnapshotOverTheWire checks the snapshot flag: an ISCAN with
// snapshot set reads a consistent past index state.
func TestIndexSnapshotOverTheWire(t *testing.T) {
	db, _, cl := startServer(t,
		silo.Options{EpochInterval: time.Millisecond, SnapshotK: 2},
		server.Options{}, client.Options{})

	if err := cl.Insert("users", []byte("u1"), row("AMS", "x")); err != nil {
		t.Fatal(err)
	}
	if err := cl.CreateIndex("users_by_city", "users", false,
		[]wire.IndexSeg{{FromValue: true, Off: 0, Len: 4}}); err != nil {
		t.Fatal(err)
	}

	// Wait until the snapshot horizon has advanced past the insert, then
	// delete the row: the serializable view is empty, the snapshot still
	// sees the row until the horizon catches up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		entries, err := cl.IndexScan("users_by_city", nil, nil, 0, true)
		if err != nil {
			t.Fatalf("snapshot iscan: %v", err)
		}
		if len(entries) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot never caught up (epoch %d)", db.Epoch())
		}
		time.Sleep(time.Millisecond)
	}
	if err := cl.Delete("users", []byte("u1")); err != nil {
		t.Fatal(err)
	}
	if entries, err := cl.IndexScan("users_by_city", nil, nil, 0, false); err != nil || len(entries) != 0 {
		t.Fatalf("serializable iscan after delete = %d entries, err %v", len(entries), err)
	}
}

// TestTypedSentinelsEndToEnd is the contract the client package now makes:
// server error strings arrive as typed sentinels that satisfy errors.Is
// against both the client's and silo's canonical errors — no string
// matching anywhere.
func TestTypedSentinelsEndToEnd(t *testing.T) {
	_, _, cl := startServer(t, silo.Options{}, server.Options{},
		client.Options{})

	if err := cl.Insert("t", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	_, err := cl.Get("t", []byte("missing"))
	if !errors.Is(err, client.ErrNotFound) || !errors.Is(err, silo.ErrNotFound) {
		t.Errorf("missing key: %v does not match both sentinels", err)
	}
	err = cl.Insert("t", []byte("k"), []byte("dup"))
	if !errors.Is(err, client.ErrKeyExists) || !errors.Is(err, silo.ErrKeyExists) {
		t.Errorf("duplicate insert: %v does not match both sentinels", err)
	}
	_, err = cl.IndexScan("ghost_index", nil, nil, 0, false)
	if !errors.Is(err, client.ErrNoIndex) || !errors.Is(err, silo.ErrNoIndex) {
		t.Errorf("unknown index: %v does not match both sentinels", err)
	}
	_, err = cl.Get("t", nil)
	if !errors.Is(err, client.ErrInvalid) || !errors.Is(err, silo.ErrKeyInvalid) {
		t.Errorf("invalid key: %v does not match both sentinels", err)
	}
}

// TestUnknownTableSentinel needs auto-creation off to surface ErrNoTable.
func TestUnknownTableSentinel(t *testing.T) {
	_, _, cl := startServer(t, silo.Options{},
		server.Options{DisableAutoCreate: true}, client.Options{})
	_, err := cl.Get("ghost", []byte("k"))
	if !errors.Is(err, client.ErrNoTable) || !errors.Is(err, silo.ErrNoTable) {
		t.Errorf("unknown table: %v does not match both sentinels", err)
	}
	if err := cl.CreateIndex("ix", "ghost", false,
		[]wire.IndexSeg{{Off: 0, Len: 1}}); !errors.Is(err, silo.ErrNoTable) {
		t.Errorf("create index on unknown table: %v", err)
	}
}
