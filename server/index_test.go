package server_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"silo"
	"silo/client"
	"silo/server"
	"silo/wire"
)

// row builds a fixed-offset test row: [city:4][rest...].
func row(city, rest string) []byte {
	v := make([]byte, 4, 4+len(rest))
	copy(v, city)
	return append(v, rest...)
}

// TestIndexOverTheWire drives the whole index lifecycle through frames:
// load rows, CREATE_INDEX (backfill), more writes (automatic maintenance),
// ISCAN resolving entries to rows, entry movement on update, and removal
// on delete.
func TestIndexOverTheWire(t *testing.T) {
	_, _, cl := startServer(t, silo.Options{}, server.Options{}, client.Options{})

	// Rows that exist before the index: the server must backfill them.
	for i, city := range []string{"AMS", "BER", "AMS"} {
		if err := cl.Insert("users", []byte(fmt.Sprintf("u%d", i)), row(city, "pre")); err != nil {
			t.Fatal(err)
		}
	}
	spec := []wire.IndexSeg{{FromValue: true, Off: 0, Len: 4}}
	if err := cl.CreateIndex("users_by_city", "users", false, spec); err != nil {
		t.Fatalf("create index: %v", err)
	}
	// Idempotent re-create.
	if err := cl.CreateIndex("users_by_city", "users", false, spec); err != nil {
		t.Fatalf("re-create index: %v", err)
	}

	// A row written after creation is maintained automatically.
	if err := cl.Insert("users", []byte("u3"), row("AMS", "post")); err != nil {
		t.Fatal(err)
	}

	ams := func() []wire.IndexEntry {
		t.Helper()
		entries, err := cl.IndexScan("users_by_city", []byte("AMS"), []byte("AMT"), 0, false)
		if err != nil {
			t.Fatalf("iscan: %v", err)
		}
		return entries
	}
	entries := ams()
	if len(entries) != 3 {
		t.Fatalf("AMS entries = %d, want 3", len(entries))
	}
	for _, e := range entries {
		if !bytes.Equal(e.SK, []byte("AMS\x00")) || !bytes.HasPrefix(e.Value, []byte("AMS")) {
			t.Fatalf("entry %q/%q resolved to %q", e.SK, e.PK, e.Value)
		}
	}

	// Update moves u0 out of AMS; delete removes u2.
	if err := cl.Put("users", []byte("u0"), row("OSL", "moved")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete("users", []byte("u2")); err != nil {
		t.Fatal(err)
	}
	if entries := ams(); len(entries) != 1 || string(entries[0].PK) != "u3" {
		t.Fatalf("after churn AMS entries = %+v", entries)
	}

	// Limit applies per scan; an oversized limit is rejected, not clamped.
	if entries, err := cl.IndexScan("users_by_city", nil, nil, 1, false); err != nil || len(entries) != 1 {
		t.Fatalf("limited iscan = %d entries, err %v", len(entries), err)
	}
	if _, err := cl.IndexScan("users_by_city", nil, nil, 1<<30, false); err == nil {
		t.Fatal("oversized iscan limit accepted")
	}

	// Direct writes to the entry table are refused (they would corrupt the
	// index); reads of it remain allowed.
	if err := cl.Insert("users_by_city", []byte("bogus"), []byte("u9")); err == nil {
		t.Fatal("direct entry-table write accepted")
	}
	if _, err := cl.Scan("users_by_city", nil, nil, 10); err != nil {
		t.Fatalf("entry-table read refused: %v", err)
	}
}

// TestCoveringIndexOverTheWire drives the covering lifecycle through
// frames: CREATE_INDEX with an include list, covering ISCANs serving
// included fields (never full rows), field freshness after updates, and
// the ErrNotCovering sentinel for a covering scan of an ordinary index.
func TestCoveringIndexOverTheWire(t *testing.T) {
	_, _, cl := startServer(t, silo.Options{}, server.Options{}, client.Options{})

	for i, city := range []string{"AMS", "BER", "AMS"} {
		if err := cl.Insert("users", []byte(fmt.Sprintf("u%d", i)), row(city, "pre")); err != nil {
			t.Fatal(err)
		}
	}
	spec := []wire.IndexSeg{{FromValue: true, Off: 0, Len: 4}}
	incs := []wire.IndexSeg{{FromValue: true, Off: 4, Len: 3}} // first 3 payload bytes
	if err := cl.CreateCoveringIndex("users_by_city", "users", false, spec, incs); err != nil {
		t.Fatalf("create covering index: %v", err)
	}
	// Idempotent re-create with the identical declaration; a different
	// include list is rejected.
	if err := cl.CreateCoveringIndex("users_by_city", "users", false, spec, incs); err != nil {
		t.Fatalf("re-create covering index: %v", err)
	}
	if err := cl.CreateCoveringIndex("users_by_city", "users", false, spec,
		[]wire.IndexSeg{{FromValue: true, Off: 4, Len: 5}}); err == nil {
		t.Fatal("re-create with a different include list accepted")
	}

	entries, err := cl.IndexScanCovering("users_by_city", []byte("AMS"), []byte("AMT"), 0, false)
	if err != nil {
		t.Fatalf("covering iscan: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("AMS covering entries = %d, want 2", len(entries))
	}
	for _, e := range entries {
		if string(e.Value) != "pre" {
			t.Fatalf("covering entry %q carries fields %q, want %q", e.PK, e.Value, "pre")
		}
	}

	// An update that changes an included field but not the secondary key
	// must refresh the entry value.
	if err := cl.Put("users", []byte("u0"), row("AMS", "new")); err != nil {
		t.Fatal(err)
	}
	entries, err = cl.IndexScanCovering("users_by_city", []byte("AMS"), []byte("AMT"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, e := range entries {
		got[string(e.PK)] = string(e.Value)
	}
	if got["u0"] != "new" || got["u2"] != "pre" {
		t.Fatalf("covering fields after update = %v", got)
	}

	// Covering scans of a non-covering index are refused with the typed
	// sentinel end to end.
	if err := cl.CreateIndex("users_plain", "users", false, spec); err != nil {
		t.Fatal(err)
	}
	_, err = cl.IndexScanCovering("users_plain", nil, nil, 0, false)
	if !errors.Is(err, client.ErrNotCovering) || !errors.Is(err, silo.ErrNotCovering) {
		t.Errorf("covering scan of plain index: %v does not match both sentinels", err)
	}
}

// TestDropIndexOverTheWire drives DROP_INDEX end to end: create an index,
// drop it, and check that scans of the dropped name and a second drop both
// surface the typed ErrNoIndex sentinel, that SCHEMA stops listing it, and
// that the name is free for a later create with a different declaration.
func TestDropIndexOverTheWire(t *testing.T) {
	_, _, cl := startServer(t, silo.Options{}, server.Options{}, client.Options{})

	for i, city := range []string{"AMS", "BER"} {
		if err := cl.Insert("users", []byte(fmt.Sprintf("u%d", i)), row(city, "pre")); err != nil {
			t.Fatal(err)
		}
	}
	spec := []wire.IndexSeg{{FromValue: true, Off: 0, Len: 4}}
	if err := cl.CreateIndex("users_by_city", "users", false, spec); err != nil {
		t.Fatal(err)
	}
	if entries, err := cl.IndexScan("users_by_city", nil, nil, 0, false); err != nil || len(entries) != 2 {
		t.Fatalf("pre-drop iscan = %d entries, err %v", len(entries), err)
	}

	if err := cl.DropIndex("users_by_city"); err != nil {
		t.Fatalf("drop index: %v", err)
	}
	if _, err := cl.IndexScan("users_by_city", nil, nil, 0, false); !errors.Is(err, client.ErrNoIndex) {
		t.Fatalf("iscan of dropped index: %v", err)
	}
	if err := cl.DropIndex("users_by_city"); !errors.Is(err, client.ErrNoIndex) || !errors.Is(err, silo.ErrNoIndex) {
		t.Fatalf("double drop: %v does not match both sentinels", err)
	}
	sch, err := cl.Schema()
	if err != nil {
		t.Fatal(err)
	}
	for i := range sch.Indexes {
		if sch.Indexes[i].Name == "users_by_city" {
			t.Fatalf("SCHEMA still lists dropped index: %+v", sch.Indexes[i])
		}
	}

	// The name is free again, even for a different declaration; the old
	// entries were wiped, so the fresh backfill is all the new index sees.
	if err := cl.CreateIndex("users_by_city", "users", false,
		[]wire.IndexSeg{{FromValue: true, Off: 0, Len: 2}}); err != nil {
		t.Fatalf("re-create after drop: %v", err)
	}
	if entries, err := cl.IndexScan("users_by_city", nil, nil, 0, false); err != nil || len(entries) != 2 {
		t.Fatalf("post-recreate iscan = %d entries, err %v", len(entries), err)
	}
}

// TestIndexSnapshotOverTheWire checks the snapshot flag: an ISCAN with
// snapshot set reads a consistent past index state.
func TestIndexSnapshotOverTheWire(t *testing.T) {
	db, _, cl := startServer(t,
		silo.Options{EpochInterval: time.Millisecond, SnapshotK: 2},
		server.Options{}, client.Options{})

	if err := cl.Insert("users", []byte("u1"), row("AMS", "x")); err != nil {
		t.Fatal(err)
	}
	if err := cl.CreateIndex("users_by_city", "users", false,
		[]wire.IndexSeg{{FromValue: true, Off: 0, Len: 4}}); err != nil {
		t.Fatal(err)
	}

	// Wait until the snapshot horizon has advanced past the insert, then
	// delete the row: the serializable view is empty, the snapshot still
	// sees the row until the horizon catches up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		entries, err := cl.IndexScan("users_by_city", nil, nil, 0, true)
		if err != nil {
			t.Fatalf("snapshot iscan: %v", err)
		}
		if len(entries) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot never caught up (epoch %d)", db.Epoch())
		}
		time.Sleep(time.Millisecond)
	}
	if err := cl.Delete("users", []byte("u1")); err != nil {
		t.Fatal(err)
	}
	if entries, err := cl.IndexScan("users_by_city", nil, nil, 0, false); err != nil || len(entries) != 0 {
		t.Fatalf("serializable iscan after delete = %d entries, err %v", len(entries), err)
	}
}

// TestTypedSentinelsEndToEnd is the contract the client package now makes:
// server error strings arrive as typed sentinels that satisfy errors.Is
// against both the client's and silo's canonical errors — no string
// matching anywhere.
func TestTypedSentinelsEndToEnd(t *testing.T) {
	_, _, cl := startServer(t, silo.Options{}, server.Options{},
		client.Options{})

	if err := cl.Insert("t", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	_, err := cl.Get("t", []byte("missing"))
	if !errors.Is(err, client.ErrNotFound) || !errors.Is(err, silo.ErrNotFound) {
		t.Errorf("missing key: %v does not match both sentinels", err)
	}
	err = cl.Insert("t", []byte("k"), []byte("dup"))
	if !errors.Is(err, client.ErrKeyExists) || !errors.Is(err, silo.ErrKeyExists) {
		t.Errorf("duplicate insert: %v does not match both sentinels", err)
	}
	_, err = cl.IndexScan("ghost_index", nil, nil, 0, false)
	if !errors.Is(err, client.ErrNoIndex) || !errors.Is(err, silo.ErrNoIndex) {
		t.Errorf("unknown index: %v does not match both sentinels", err)
	}
	_, err = cl.Get("t", nil)
	if !errors.Is(err, client.ErrInvalid) || !errors.Is(err, silo.ErrKeyInvalid) {
		t.Errorf("invalid key: %v does not match both sentinels", err)
	}
}

// TestUnknownTableSentinel needs auto-creation off to surface ErrNoTable.
func TestUnknownTableSentinel(t *testing.T) {
	_, _, cl := startServer(t, silo.Options{},
		server.Options{DisableAutoCreate: true}, client.Options{})
	_, err := cl.Get("ghost", []byte("k"))
	if !errors.Is(err, client.ErrNoTable) || !errors.Is(err, silo.ErrNoTable) {
		t.Errorf("unknown table: %v does not match both sentinels", err)
	}
	if err := cl.CreateIndex("ix", "ghost", false,
		[]wire.IndexSeg{{Off: 0, Len: 1}}); !errors.Is(err, silo.ErrNoTable) {
		t.Errorf("create index on unknown table: %v", err)
	}
}

// TestTransformIndexAndSchemaOverTheWire drives the transform vocabulary
// and the catalog-introspection frame end to end: an index whose key spec
// byte-reverses a little-endian row field and bit-inverts a key field is
// declared over the wire, scans serve most-recent-first order, and SCHEMA
// reports the full declaration back — segments, transforms, include
// lists, uniqueness — exactly as declared.
func TestTransformIndexAndSchemaOverTheWire(t *testing.T) {
	_, _, cl := startServer(t, silo.Options{}, server.Options{}, client.Options{})

	// Rows: key = big-endian (group, seq); value = little-endian owner id
	// plus filler. The index key is (owner big-endian, ^seq), so a scan
	// finds an owner's newest seq first.
	key := func(group, seq uint32) []byte {
		k := make([]byte, 8)
		binary.BigEndian.PutUint32(k, group)
		binary.BigEndian.PutUint32(k[4:], seq)
		return k
	}
	val := func(owner uint32) []byte {
		v := make([]byte, 8)
		binary.LittleEndian.PutUint32(v, owner)
		return v
	}
	for seq := uint32(1); seq <= 5; seq++ {
		if err := cl.Insert("events", key(1, seq), val(7)); err != nil {
			t.Fatal(err)
		}
	}
	segs := []wire.IndexSeg{
		{FromValue: true, Off: 0, Len: 4, Xform: wire.XformReverse}, // owner LE → BE
		{Off: 4, Len: 4, Xform: wire.XformInvert},                   // ^seq
	}
	incs := []wire.IndexSeg{{FromValue: true, Off: 0, Len: 4}}
	if err := cl.CreateCoveringIndex("events_by_owner", "events", true, segs, incs); err != nil {
		t.Fatalf("create transform index: %v", err)
	}

	ownerLo := make([]byte, 4)
	binary.BigEndian.PutUint32(ownerLo, 7)
	ownerHi := make([]byte, 4)
	binary.BigEndian.PutUint32(ownerHi, 8)
	entries, err := cl.IndexScan("events_by_owner", ownerLo, ownerHi, 0, false)
	if err != nil {
		t.Fatalf("iscan: %v", err)
	}
	if len(entries) != 5 {
		t.Fatalf("owner 7 entries = %d, want 5", len(entries))
	}
	// Most recent first: the first entry's primary key carries seq 5.
	if got := binary.BigEndian.Uint32(entries[0].PK[4:]); got != 5 {
		t.Fatalf("first entry resolves seq %d, want 5 (most recent first)", got)
	}
	for i := 1; i < len(entries); i++ {
		a := binary.BigEndian.Uint32(entries[i-1].PK[4:])
		b := binary.BigEndian.Uint32(entries[i].PK[4:])
		if a <= b {
			t.Fatalf("entries not in descending seq order: %d then %d", a, b)
		}
	}

	sch, err := cl.Schema()
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	var ix *wire.SchemaIndex
	for i := range sch.Indexes {
		if sch.Indexes[i].Name == "events_by_owner" {
			ix = &sch.Indexes[i]
		}
	}
	if ix == nil {
		t.Fatalf("SCHEMA response does not list events_by_owner (got %+v)", sch.Indexes)
	}
	if !ix.Unique || ix.Opaque || ix.Table != "events" {
		t.Fatalf("schema declaration mismatch: %+v", ix)
	}
	if len(ix.Segs) != len(segs) || len(ix.Incs) != len(incs) {
		t.Fatalf("schema segs/incs = %d/%d, want %d/%d", len(ix.Segs), len(ix.Incs), len(segs), len(incs))
	}
	for i := range segs {
		if ix.Segs[i] != segs[i] {
			t.Fatalf("schema seg %d = %+v, want %+v", i, ix.Segs[i], segs[i])
		}
	}
	if ix.Incs[0] != incs[0] {
		t.Fatalf("schema include = %+v, want %+v", ix.Incs[0], incs[0])
	}
	// The catalog's own table is listed (id 0) and rejects direct writes.
	if len(sch.Tables) == 0 || sch.Tables[0].ID != 0 || sch.Tables[0].Name != silo.CatalogTableName {
		t.Fatalf("schema tables do not lead with the catalog: %+v", sch.Tables)
	}
	err = cl.Put(silo.CatalogTableName, []byte("x"), []byte("y"))
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeIndexTable {
		t.Fatalf("direct catalog write not rejected: %v", err)
	}
}
