package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"silo"
	"silo/wire"
)

// workerLoop is the executor for worker w: it owns that worker context for
// the server's lifetime and runs each dispatched request as a one-shot
// transaction, exactly the paper's model of requests arriving over the
// network and executing to completion on a worker core.
func (s *Server) workerLoop(w int) {
	defer s.workerWG.Done()
	o := s.wobs[w]
	slowAt := s.opts.SlowThreshold
	var st *execState
	if !s.opts.noReuse {
		st = newExecState(s, w)
	}
	for j := range s.jobs {
		start := time.Now()
		if !j.enq.IsZero() {
			o.queue.ObserveDuration(start.Sub(j.enq).Nanoseconds())
		}
		kind := wire.KindTxn
		switch {
		case j.req.Trace:
			kind = wire.KindTrace
		case !j.req.Txn:
			kind = j.req.Ops[0].Kind
		}
		// A TRACE frame is traced because the client asked; with slow-op
		// capture armed, everything is traced so a slow op's timeline is
		// already in hand when it crosses the threshold. With the group
		// release pipeline active a traced write must not block this
		// worker on durability — the releaser accounts the park-to-release
		// wait to the Fsync span instead, so the timeline still covers the
		// client-visible commit point.
		var tc *traceCtx
		var t0 time.Duration
		if j.req.Trace || slowAt > 0 {
			tc = &traceCtx{sp: &silo.TxnSpans{}, durable: j.req.Trace && s.rel == nil}
			t0 = s.now()
			if q := t0 - j.enqTS; q > 0 && !j.enq.IsZero() {
				tc.sp.Queue = q
			}
		}
		resp := s.exec(w, st, &j.req, tc)
		if tc != nil {
			elapsed := s.now() - t0
			sp := tc.sp
			// The engine timed execute/validate/log/fsync-wait; what is
			// left of the frame's wall time is table resolution and
			// result assembly — the respond span.
			if r := elapsed - (sp.Exec + sp.Validate + sp.Log + sp.Fsync); r > 0 {
				sp.Respond = r
			}
			if j.req.Trace && resp.Kind == wire.KindTxnR {
				resp.Kind = wire.KindTraceR
				resp.Spans = sp
			}
			if total := sp.Queue + elapsed; slowAt > 0 && total >= slowAt {
				op := slowOp{
					At:    t0 + elapsed,
					Kind:  kind,
					Ops:   len(j.req.Ops),
					Total: total,
					Spans: *sp,
				}
				op.Table, op.Tables, op.Counts = slowAttr(j.req.Ops)
				if resp.Kind == wire.KindErr {
					op.Err = resp.Msg
				}
				s.slow.add(op)
			}
		}
		// Latency and counters are recorded at execution time: the
		// latency histogram prices the exec path (queue wait excluded,
		// retries included), while the wait from commit to durable
		// release is the releaser's own release-lag histogram.
		o.latency[latIdx(kind)].ObserveDuration(time.Since(start).Nanoseconds())
		if resp.Kind == wire.KindErr {
			s.errors64.Add(1)
		}
		s.requests64.Add(1)
		s.respond(w, &j.req, resp, j.done)
	}
}

// respond encodes and releases one completed response according to the
// server's ack mode. Encoding happens here, on the executor, into a
// recycled buffer — the response may alias the worker's exec state and
// the job's payload, both reused for the next job, so the bytes must be
// captured before this function returns (TRACER responses are the one
// exception, see encodeResp). Write responses carry their commit epoch
// to the release pipeline (or, in the per-request baseline, block this
// worker until it is durable); reads, snapshot scans, and errors release
// immediately — an ERR frame acknowledges nothing (the transaction
// aborted), and reads have nothing to make durable. Auto-created tables
// are covered by the data epoch: the catalog record commits (on the DDL
// worker) before the data write's commit, and epochs are monotone, so a
// durable data epoch implies the creation record is durable too.
func (s *Server) respond(w int, req *wire.Request, resp wire.Response, done chan<- outMsg) {
	m := s.encodeResp(&resp)
	if s.ackMode == AckImmediate || resp.Kind == wire.KindErr || !writesData(req) {
		done <- m
		return
	}
	var e uint64
	if isDDLFrame(req) {
		// DDL commits on the hidden catalog worker, whose commit epoch is
		// not visible here; it committed before this point, so the current
		// global epoch is a conservative upper bound.
		e = s.db.Epoch()
	} else {
		e = s.db.LastCommitEpoch(w)
	}
	if s.ackMode == AckPerRequest {
		s.db.FlushLog(w)
		s.db.WaitDurable(e)
		done <- m
		return
	}
	s.rel.park(m, done, e)
}

// encodeResp turns an executor's response into the writer-bound outMsg.
// The steady state encodes into a pooled buffer immediately; a response
// carrying spans (a TRACER) instead travels decoded in a private copy,
// because the group-commit releaser patches its Fsync span between park
// and release — encoding it now would freeze a lie. Traced execution
// uses the allocating paths, so the copy shares nothing with the
// worker's recycled exec state.
func (s *Server) encodeResp(resp *wire.Response) outMsg {
	if resp.Spans != nil {
		rp := new(wire.Response)
		*rp = *resp
		return outMsg{resp: rp}
	}
	rb := s.getBuf()
	b, err := wire.AppendResponse(rb.b[:0], resp)
	if err != nil {
		// Encoding failure is a server bug; degrade to an ERR frame rather
		// than desynchronizing the stream.
		b, _ = wire.AppendResponse(rb.b[:0], &wire.Response{
			Kind: wire.KindErr, Code: wire.CodeInternal, Msg: err.Error(),
		})
	}
	rb.b = b
	return outMsg{rb: rb}
}

// writesData reports whether a frame's success implies a committed write
// whose durability gates the response. Pure reads — GET, SCAN, ISCAN,
// SCHEMA, STATS, and TXN/TRACE frames containing only GETs — have
// nothing to wait for.
func writesData(req *wire.Request) bool {
	for i := range req.Ops {
		switch req.Ops[i].Kind {
		case wire.KindPut, wire.KindInsert, wire.KindDelete, wire.KindAdd,
			wire.KindCreateIndex, wire.KindDropIndex:
			return true
		}
	}
	return false
}

// isDDLFrame reports a single-op index-DDL frame (CREATE_INDEX /
// DROP_INDEX), which commits on the hidden catalog worker rather than the
// executing one.
func isDDLFrame(req *wire.Request) bool {
	if req.Txn || len(req.Ops) == 0 {
		return false
	}
	k := req.Ops[0].Kind
	return k == wire.KindCreateIndex || k == wire.KindDropIndex
}

// latIdx maps a request kind to its latency histogram slot: every
// assigned request kind gets its own slot (TestLatencySlotsDistinct
// enforces it statically), and anything out of range — a malformed kind
// that still reached execution — shares slot 0 instead of aliasing a
// real opcode the way the historical low-nibble mask did for kinds ≥ 16.
func latIdx(k wire.Kind) int {
	if k > wire.KindRequestMax {
		return 0
	}
	return int(k)
}

// slowAttr summarizes a frame's ops for slow capture: per-kind counts,
// the number of distinct tables touched, and the attributed table — the
// one the frame wrote the most ops against (ties break toward the
// earliest op), falling back to the first op's table or index name for
// read-only frames. Multi-op TXN frames previously reported Ops[0]'s
// table unconditionally, misattributing any transaction whose first op
// happened to touch a side table.
func slowAttr(ops []wire.Op) (table string, tables int, counts opCounts) {
	// Allocation is fine here: captures only happen past the slow
	// threshold.
	writes := make(map[string]int)
	seen := make(map[string]struct{})
	var domWrites int
	for i := range ops {
		op := &ops[i]
		if k := int(op.Kind); k >= 0 && k < len(counts) {
			counts[k]++
		}
		name := op.Table
		if name == "" {
			name = op.Index
		}
		seen[name] = struct{}{}
		switch op.Kind {
		case wire.KindPut, wire.KindInsert, wire.KindDelete, wire.KindAdd,
			wire.KindCreateIndex, wire.KindDropIndex:
			writes[name]++
			if writes[name] > domWrites {
				domWrites = writes[name]
				table = name
			}
		}
	}
	if table == "" && len(ops) > 0 {
		table = ops[0].Table
		if table == "" {
			table = ops[0].Index
		}
	}
	return table, len(seen), counts
}

// table resolves a table name, creating the table on first use unless
// auto-creation is disabled. CreateTable is idempotent and safe against
// concurrent executors.
func (s *Server) table(name string) (*silo.Table, error) {
	if t := s.db.Table(name); t != nil {
		return t, nil
	}
	if s.opts.DisableAutoCreate {
		return nil, errNoTable
	}
	return s.db.CreateTable(name), nil
}

var (
	errNoTable      = silo.ErrNoTable
	errBadValue     = errors.New("server: ADD requires a value of at least 8 bytes")
	errIndexTable   = errors.New("server: table is an index entry table; write its primary table instead")
	errCatalogTable = errors.New("server: table is the schema catalog; it is maintained by DDL operations only")
)

// writable rejects direct writes to index entry tables — which would
// silently desynchronize the index from its primary table — and to the
// schema catalog, whose rows recovery trusts to reconstruct the schema.
// Reads and scans of both remain allowed (they are harmless and
// occasionally useful for debugging).
func (s *Server) writable(name string) error {
	if name == silo.CatalogTableName {
		return errCatalogTable
	}
	if s.db.Index(name) != nil {
		return errIndexTable
	}
	return nil
}

// errResponse maps an execution error to an ERR frame.
func errResponse(err error) wire.Response {
	code := wire.CodeInternal
	switch {
	case errors.Is(err, silo.ErrNotFound):
		code = wire.CodeNotFound
	case errors.Is(err, silo.ErrKeyExists):
		code = wire.CodeKeyExists
	case errors.Is(err, silo.ErrConflict):
		code = wire.CodeConflict
	case errors.Is(err, silo.ErrKeyInvalid):
		code = wire.CodeInvalid
	case errors.Is(err, silo.ErrNoTable):
		code = wire.CodeNoTable
	case errors.Is(err, silo.ErrNoIndex):
		code = wire.CodeNoIndex
	case errors.Is(err, silo.ErrNotCovering):
		code = wire.CodeNotCovering
	case errors.Is(err, errBadValue):
		code = wire.CodeBadValue
	case errors.Is(err, errIndexTable), errors.Is(err, errCatalogTable):
		// Deliberately not CodeInvalid: the key is fine, the target is
		// wrong, and clients should see the explanatory message (it
		// arrives as a ServerError preserving code and text).
		code = wire.CodeIndexTable
	}
	return wire.Err(code, err.Error())
}

// addValue applies an ADD: read the big-endian counter in the value's
// first 8 bytes, add delta (two's complement, so negative deltas
// subtract), write the record back, and return the new counter. Trailing
// bytes ride along unchanged, so ADD doubles as YCSB's read-modify-write
// on 100-byte records. Concurrent ADDs on the same key conflict and
// retry, making it a serializable read-modify-write over the wire.
func addValue(tx *silo.Tx, t *silo.Table, key []byte, delta int64) (uint64, error) {
	v, err := tx.Get(t, key)
	if err != nil {
		return 0, err
	}
	if len(v) < 8 {
		return 0, errBadValue
	}
	n := binary.BigEndian.Uint64(v) + uint64(delta)
	binary.BigEndian.PutUint64(v, n)
	return n, tx.Put(t, key, v)
}

// exec runs one decoded request on worker w and builds its response.
// Untraced data ops (tc nil) run on the worker's recycled exec state —
// the allocation-free steady state, whose response slices alias st and
// stay valid only until the next exec on this worker; respond encodes
// them before that. Traced requests and everything below the first
// switch use the historical allocating paths, whose response slices are
// freshly owned (required for TRACER responses, which outlive the
// executor while parked). With tc set, transactional paths run traced;
// DDL, SCHEMA, STATS, and snapshot reads have no commit phases to time
// and ignore it.
func (s *Server) exec(w int, st *execState, req *wire.Request, tc *traceCtx) wire.Response {
	if req.Txn {
		return s.execTxn(w, st, req.Ops, tc)
	}
	op := &req.Ops[0]
	// Index frames resolve an index name, not a table name.
	switch op.Kind {
	case wire.KindCreateIndex:
		return s.execCreateIndex(w, op)
	case wire.KindDropIndex:
		return s.execDropIndex(op)
	case wire.KindIScan:
		return s.execIScan(w, op, tc)
	case wire.KindSchema:
		return s.execSchema()
	case wire.KindStats:
		return s.execStats()
	}
	t, err := s.table(op.Table)
	if err != nil {
		return errResponse(err)
	}
	switch op.Kind {
	case wire.KindPut, wire.KindInsert, wire.KindDelete, wire.KindAdd:
		if err := s.writable(op.Table); err != nil {
			return errResponse(err)
		}
	}
	if st != nil && tc == nil {
		return s.execFast(st, op, t)
	}
	switch op.Kind {
	case wire.KindGet:
		var val []byte
		err := s.run(w, tc, func(tx *silo.Tx) error {
			var err error
			val, err = tx.Get(t, op.Key)
			return err
		})
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Kind: wire.KindValue, Value: val}

	case wire.KindPut:
		err := s.run(w, tc, func(tx *silo.Tx) error {
			return tx.Put(t, op.Key, op.Value)
		})
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Kind: wire.KindOK}

	case wire.KindInsert:
		err := s.run(w, tc, func(tx *silo.Tx) error {
			return tx.Insert(t, op.Key, op.Value)
		})
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Kind: wire.KindOK}

	case wire.KindDelete:
		err := s.run(w, tc, func(tx *silo.Tx) error {
			return tx.Delete(t, op.Key)
		})
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Kind: wire.KindOK}

	case wire.KindAdd:
		var n uint64
		err := s.run(w, tc, func(tx *silo.Tx) error {
			var err error
			n, err = addValue(tx, t, op.Key, op.Delta)
			return err
		})
		if err != nil {
			return errResponse(err)
		}
		var v [8]byte
		binary.BigEndian.PutUint64(v[:], n)
		return wire.Response{Kind: wire.KindValue, Value: v[:]}

	case wire.KindScan:
		// Like ISCAN, a limit beyond the server's cap is rejected rather
		// than silently clamped (the historical behavior): truncating to
		// fewer results than requested is indistinguishable from the
		// range really ending.
		if op.Limit != 0 && int64(op.Limit) > int64(s.opts.MaxScan) {
			return wire.Err(wire.CodeInvalid,
				fmt.Sprintf("server: scan limit %d exceeds server maximum %d", op.Limit, s.opts.MaxScan))
		}
		limit := s.opts.MaxScan
		if op.Limit != 0 {
			limit = int(op.Limit)
		}
		var pairs []wire.KV
		err := s.run(w, tc, func(tx *silo.Tx) error {
			pairs = pairs[:0] // retried transactions restart the scan
			return tx.Scan(t, op.Key, hiBound(op), func(k, v []byte) bool {
				// Keys and values are only valid during the callback.
				pairs = append(pairs, wire.KV{
					Key:   append([]byte(nil), k...),
					Value: append([]byte(nil), v...),
				})
				return len(pairs) < limit
			})
		})
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Kind: wire.KindScanR, Pairs: pairs}
	}
	return wire.Err(wire.CodeProto, "unexecutable kind "+op.Kind.String())
}

// execCreateIndex creates (idempotently) a secondary index from a
// declarative key spec, backfilling any existing rows on this worker. A
// frame with include segments declares a covering index whose entry
// values carry those row fields.
func (s *Server) execCreateIndex(w int, op *wire.Op) wire.Response {
	t, err := s.table(op.Table)
	if err != nil {
		return errResponse(err)
	}
	segs := wireSegs(op.Segs)
	if len(op.Incs) > 0 {
		if _, err := s.db.CreateCoveringIndexSpec(w, t, op.Index, op.Unique, segs, wireSegs(op.Incs)); err != nil {
			return errResponse(err)
		}
		return wire.Response{Kind: wire.KindOK}
	}
	if _, err := s.db.CreateIndexSpec(w, t, op.Index, op.Unique, segs); err != nil {
		return errResponse(err)
	}
	return wire.Response{Kind: wire.KindOK}
}

// execDropIndex drops a named index. The drop is logged DDL — the
// registry removal and entry wipe replay from the WAL — so the index
// stays dropped across recovery. Unknown names map to CodeNoIndex.
func (s *Server) execDropIndex(op *wire.Op) wire.Response {
	if err := s.db.DropIndex(op.Index); err != nil {
		return errResponse(err)
	}
	return wire.Response{Kind: wire.KindOK}
}

func wireSegs(in []wire.IndexSeg) []silo.IndexSeg {
	segs := make([]silo.IndexSeg, len(in))
	for i, sg := range in {
		segs[i] = silo.IndexSeg{FromValue: sg.FromValue, Off: int(sg.Off), Len: int(sg.Len), Xform: sg.Xform}
	}
	return segs
}

// segsWire converts engine segments back to their wire form; ok is false
// when a segment cannot be expressed (offsets beyond the wire's u16 range
// — only constructible by embedded callers), in which case the index is
// reported as opaque.
func segsWire(in []silo.IndexSeg) ([]wire.IndexSeg, bool) {
	if in == nil {
		return nil, true
	}
	segs := make([]wire.IndexSeg, len(in))
	for i, sg := range in {
		if sg.Off > 65535 || sg.Len > 65535 {
			return nil, false
		}
		segs[i] = wire.IndexSeg{FromValue: sg.FromValue, Off: uint16(sg.Off), Len: uint16(sg.Len), Xform: sg.Xform}
	}
	return segs, true
}

// execSchema serves the catalog-introspection frame: every table (id and
// name, the schema catalog itself included) and every index declaration.
// A remote client can reconstruct the server's full DDL state from one
// SCHEMA round trip — uniqueness, key specs with transforms, covering
// include lists — or discover that an index is opaque (declared embedded
// with a Go key function).
func (s *Server) execSchema() wire.Response {
	sch := &wire.Schema{}
	for _, t := range s.db.Tables() {
		sch.Tables = append(sch.Tables, wire.SchemaTable{ID: t.ID, Name: t.Name})
	}
	for _, ix := range s.db.Indexes() {
		si := wire.SchemaIndex{Name: ix.Name, Table: ix.On.Name, Unique: ix.Unique}
		segs, ok := segsWire(ix.Spec)
		if !ok || segs == nil {
			si.Opaque = true
		} else {
			si.Segs = segs
		}
		if incs, ok := segsWire(ix.Include); ok {
			si.Incs = incs
		} else {
			// An include list outside the wire's range cannot be declared
			// remotely; report the index opaque rather than lying about
			// its projection.
			si.Opaque = true
			si.Segs = nil
		}
		sch.Indexes = append(sch.Indexes, si)
	}
	return wire.Response{Kind: wire.KindSchemaR, Schema: sch}
}

// execIScan runs an index scan. A covering frame is served from entry
// values alone (the response values are the included fields); otherwise
// entries resolve to primary rows — serializably with batched resolution
// (entries collected, primary keys sorted, rows fetched with ordered
// multi-get descents) and phantom protection on both trees, or against a
// recent consistent snapshot when the frame asks for one.
func (s *Server) execIScan(w int, op *wire.Op, tc *traceCtx) wire.Response {
	ix := s.db.Index(op.Index)
	if ix == nil {
		return errResponse(fmt.Errorf("%w: %q", silo.ErrNoIndex, op.Index))
	}
	// A limit beyond the server's cap is rejected outright (SCAN rejects
	// identically): truncating to fewer results than requested would be
	// indistinguishable from the range really ending.
	if op.Limit != 0 && int64(op.Limit) > int64(s.opts.MaxScan) {
		return wire.Err(wire.CodeInvalid,
			fmt.Sprintf("server: iscan limit %d exceeds server maximum %d", op.Limit, s.opts.MaxScan))
	}
	limit := s.opts.MaxScan
	if op.Limit != 0 {
		limit = int(op.Limit)
	}
	lo := op.Key
	if len(lo) == 0 {
		lo = []byte{0} // smallest valid entry key
	}
	var entries []wire.IndexEntry
	collect := func(sk, pk, val []byte) bool {
		// Slices are only valid during the callback.
		entries = append(entries, wire.IndexEntry{
			SK:    append([]byte(nil), sk...),
			PK:    append([]byte(nil), pk...),
			Value: append([]byte(nil), val...),
		})
		return len(entries) < limit
	}
	var err error
	switch {
	case op.Covering && op.Snapshot:
		err = s.db.RunSnapshot(w, func(stx *silo.SnapTx) error {
			entries = entries[:0]
			return silo.ScanIndexSnapshotCovering(stx, ix, lo, hiBound(op), collect)
		})
	case op.Covering:
		err = s.run(w, tc, func(tx *silo.Tx) error {
			entries = entries[:0] // retried transactions restart the scan
			return silo.ScanIndexCovering(tx, ix, lo, hiBound(op), collect)
		})
	case op.Snapshot:
		err = s.db.RunSnapshot(w, func(stx *silo.SnapTx) error {
			entries = entries[:0]
			return silo.ScanIndexSnapshot(stx, ix, lo, hiBound(op), collect)
		})
	default:
		err = s.run(w, tc, func(tx *silo.Tx) error {
			entries = entries[:0] // retried transactions restart the scan
			return silo.ScanIndexBatched(tx, ix, lo, hiBound(op), limit, collect)
		})
	}
	if err != nil {
		return errResponse(err)
	}
	return wire.Response{Kind: wire.KindIScanR, Entries: entries}
}

// hiBound maps the wire scan bound to the engine's: nil means +inf, and an
// explicit empty upper bound means an empty range.
func hiBound(op *wire.Op) []byte {
	if !op.HasHi {
		return nil
	}
	if op.Hi == nil {
		return []byte{}
	}
	return op.Hi
}

// execTxn runs a multi-op frame as one serializable transaction. Any op
// error aborts the whole transaction (no partial effects) and is reported
// as a single ERR frame; on commit, GET and ADD ops report values
// positionally in a TXNR frame. Untraced frames run on the worker's
// recycled exec state (execTxnFast); traced ones take the allocating
// path below.
func (s *Server) execTxn(w int, st *execState, ops []wire.Op, tc *traceCtx) wire.Response {
	if st != nil && tc == nil {
		return s.execTxnFast(st, ops)
	}
	// Resolve tables outside the transaction: creation is not
	// transactional and must not be retried into the log out of order.
	tables := make([]*silo.Table, len(ops))
	for i := range ops {
		t, err := s.table(ops[i].Table)
		if err != nil {
			return errResponse(err)
		}
		if ops[i].Kind != wire.KindGet {
			if err := s.writable(ops[i].Table); err != nil {
				return errResponse(err)
			}
		}
		tables[i] = t
	}
	results := make([]wire.TxnResult, len(ops))
	err := s.run(w, tc, func(tx *silo.Tx) error {
		for i := range results {
			results[i] = wire.TxnResult{} // retried transactions restart
		}
		for i := range ops {
			op := &ops[i]
			switch op.Kind {
			case wire.KindGet:
				v, err := tx.Get(tables[i], op.Key)
				if err != nil {
					return err
				}
				results[i] = wire.TxnResult{HasValue: true, Value: v}
			case wire.KindPut:
				if err := tx.Put(tables[i], op.Key, op.Value); err != nil {
					return err
				}
			case wire.KindInsert:
				if err := tx.Insert(tables[i], op.Key, op.Value); err != nil {
					return err
				}
			case wire.KindDelete:
				if err := tx.Delete(tables[i], op.Key); err != nil {
					return err
				}
			case wire.KindAdd:
				n, err := addValue(tx, tables[i], op.Key, op.Delta)
				if err != nil {
					return err
				}
				v := make([]byte, 8)
				binary.BigEndian.PutUint64(v, n)
				results[i] = wire.TxnResult{HasValue: true, Value: v}
			default:
				return errors.New("server: bad txn op " + op.Kind.String())
			}
		}
		return nil
	})
	if err != nil {
		return errResponse(err)
	}
	return wire.Response{Kind: wire.KindTxnR, Results: results}
}
