package server

import (
	"sync"
	"time"

	"silo/internal/race"
	"silo/wire"
)

// This file owns the hot path's recycled memory: pooled jobs (frame
// payload, decode scratch, result channel) and pooled response buffers
// (encoded frames on their way to a connection writer). The lifecycle is
// strict single-ownership passed along the pipeline:
//
//	reader  — takes a job from the pool, reads the frame into its payload,
//	          decodes into its request/scratch, enqueues it on the
//	          connection's pending queue and the dispatch queue
//	worker  — executes the request, encodes the response into a pooled
//	          respBuf (steady state) and sends it on the job's done
//	          channel, possibly via the group-commit releaser
//	writer  — queues the buffer as one writev segment, and after the
//	          segments are flushed returns buffers and job to their pools
//
// Race-enabled builds poison recycled memory on return to the pool, so
// any stage that holds a view past its release reads garbage and the
// byte-exact e2e tests fail loudly instead of silently serving another
// request's bytes.

// outMsg is one response travelling from executor to connection writer:
// either an encoded frame in a recycled buffer (the steady-state path)
// or a still-decoded Response the writer must encode. TRACER responses
// stay decoded because the group-commit releaser patches their Fsync
// span at release time — after the worker moved on, before the writer
// encodes.
type outMsg struct {
	rb   *respBuf
	resp *wire.Response
}

// job is one in-flight request. The reader owns it until dispatch, the
// executor until the done send, the writer until it returns it to the
// pool; the pooled pieces (payload backing, decode scratch, the buffered
// done channel) are recycled across requests and connections.
type job struct {
	req wire.Request
	// payload is the frame payload backing req; key/value/table slices in
	// req alias it until the response is encoded.
	payload []byte
	// scratch recycles the request's op-slice backing and table-name
	// interning across frames decoded into this job.
	scratch wire.DecodeScratch
	// enq is when the connection reader dispatched the job; the executor
	// records the difference as queue time.
	enq time.Time
	// enqTS is the same instant on the store clock, so a traced job's
	// queue-wait span shares a clock with its commit-phase spans.
	enqTS time.Duration
	// done receives exactly one response; it is buffered so the executor
	// never blocks on a connection that died.
	done chan outMsg
}

// respBuf is a pooled response-frame buffer. The wrapper (rather than a
// bare []byte) keeps pool round trips allocation-free: the same *respBuf
// travels worker → writer → pool with the byte slice updated in place.
type respBuf struct{ b []byte }

// maxPooled caps the capacity a recycled payload or response buffer may
// keep: a single huge frame (a multi-megabyte SCANR page, a bulk-load
// TXN) should not pin its buffer in the pool forever. Oversized buffers
// are dropped and the next use re-allocates.
const maxPooled = 256 << 10

var jobPool = sync.Pool{New: func() any { return &job{done: make(chan outMsg, 1)} }}

var respBufPool = sync.Pool{New: func() any { return new(respBuf) }}

// getJob returns a recycled job (noReuse builds get a fresh one, the
// golden baseline the recycling e2e test compares against).
func (s *Server) getJob() *job {
	if s.opts.noReuse {
		return &job{done: make(chan outMsg, 1)}
	}
	return jobPool.Get().(*job)
}

// putJob recycles a fully consumed job: its response was encoded (or
// copied) and handed to the writer, so nothing references the payload,
// the scratch, or the request anymore.
func (s *Server) putJob(j *job) {
	if s.opts.noReuse {
		return
	}
	if race.Enabled {
		poison(j.payload)
	}
	if cap(j.payload) > maxPooled {
		j.payload = nil
		// The scratch's op backing aliases the dropped payload; release it
		// too so the pool does not pin the oversized buffer.
		j.scratch.Drop()
	}
	j.req = wire.Request{}
	j.enq = time.Time{}
	j.enqTS = 0
	jobPool.Put(j)
}

func (s *Server) getBuf() *respBuf {
	if s.opts.noReuse {
		return new(respBuf)
	}
	return respBufPool.Get().(*respBuf)
}

// putBuf recycles an encoded-frame buffer after the writer flushed it
// (or dropped it on a broken connection).
func (s *Server) putBuf(rb *respBuf) {
	if s.opts.noReuse {
		return
	}
	if race.Enabled {
		poison(rb.b)
	}
	if cap(rb.b) > maxPooled {
		rb.b = nil
	}
	respBufPool.Put(rb)
}

// poisonByte is what race-enabled builds overwrite recycled buffers
// with; a stage reading a buffer it already released sees frames full of
// 0xDB instead of plausibly stale bytes.
const poisonByte = 0xDB

func poison(b []byte) {
	for i := range b {
		b[i] = poisonByte
	}
}
