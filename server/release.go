package server

import (
	"sync"
	"sync/atomic"
	"time"

	"silo/internal/obs"
)

// AckMode selects when a write's response is released to the connection
// writer — the server-side half of the paper's §4.10 contract that a
// transaction's result reaches its client only once its epoch is durable.
type AckMode int

const (
	// AckImmediate releases responses at in-memory commit (the historical
	// behavior): fast, but a power cut right after an OK frame can lose
	// the acknowledged write. It is the only mode available without
	// durability, and remains the default for embedded Options zero
	// values so existing callers keep their semantics.
	AckImmediate AckMode = iota
	// AckGroup parks each write response on an epoch-keyed release queue
	// and hands it to the connection writer only once the global durable
	// epoch D covers the transaction's commit epoch. Workers commit and
	// immediately move to the next job; one group-commit fsync releases
	// every connection's parked responses for that epoch. Reads, snapshot
	// scans, and errors release immediately.
	AckGroup
	// AckPerRequest blocks the executing worker until the write's epoch
	// is durable before responding (a per-request RunDurable). It gives
	// the same guarantee as AckGroup but stalls the worker for a full
	// group-commit cycle per write; it exists as the naive baseline the
	// release pipeline is benchmarked against.
	AckPerRequest
)

func (m AckMode) String() string {
	switch m {
	case AckImmediate:
		return "immediate"
	case AckGroup:
		return "group"
	case AckPerRequest:
		return "per-request"
	}
	return "unknown"
}

// parkedResp is one completed write response waiting for its commit epoch
// to become durable. The steady state parks encoded frames (outMsg.rb);
// TRACER responses park decoded (outMsg.resp) so releaseUpTo can patch
// their Fsync span with the wait the client actually experienced.
type parkedResp struct {
	m    outMsg
	done chan<- outMsg
	at   time.Duration // store clock at park, for the release-lag histogram
}

// releaser is the group-commit response-release pipeline: an epoch-keyed
// parking lot drained by one notifier goroutine subscribed to durable-
// epoch advances. Per-connection wire order is preserved for free — the
// connection reader enqueues each job's result channel on its in-order
// pending queue before dispatch, and the writer blocks on the oldest
// channel — so delaying a send here delays that response and everything
// behind it on the same connection, never reorders.
type releaser struct {
	s      *Server
	notify <-chan uint64

	mu    sync.Mutex
	queue map[uint64][]parkedResp // commit epoch → responses parked on it

	parked   atomic.Int64  // gauge: responses currently parked
	released atomic.Uint64 // responses that went through the pipeline
	lag      obs.Histogram // ns from park to release

	stopc chan struct{}
	done  chan struct{}
}

func newReleaser(s *Server, notify <-chan uint64) *releaser {
	r := &releaser{
		s:      s,
		notify: notify,
		queue:  make(map[uint64][]parkedResp),
		stopc:  make(chan struct{}),
		done:   make(chan struct{}),
	}
	go r.loop()
	return r
}

// park holds resp until D covers epoch e, then sends it to done. If e is
// already durable the response is released inline. The durable check and
// the queue insert share r.mu with the drain: if D advances past e after
// the check, the advance's notification is still undelivered (the notify
// channel coalesces but never drops the newest value), so the notifier's
// next drain — which must acquire r.mu after this insert — releases the
// entry. Nothing can park forever behind an already-durable epoch.
func (r *releaser) park(m outMsg, done chan<- outMsg, e uint64) {
	at := r.s.now()
	r.mu.Lock()
	if r.s.db.DurableEpoch() >= e {
		r.mu.Unlock()
		r.lag.ObserveDuration(0)
		r.released.Add(1)
		done <- m
		return
	}
	r.queue[e] = append(r.queue[e], parkedResp{m: m, done: done, at: at})
	r.parked.Add(1)
	r.mu.Unlock()
}

// loop drains the parking lot as durable-epoch notifications arrive. A
// closed notify channel means durability stopped after its final drain —
// every committed epoch is durable — so everything still parked is
// releasable. stop() flushes for the same reason: the server only stops
// the releaser after the executors have exited, and the result channels
// are buffered, so flushing can never block or lose a response.
func (r *releaser) loop() {
	defer close(r.done)
	for {
		select {
		case d, ok := <-r.notify:
			if !ok {
				r.releaseUpTo(^uint64(0))
				return
			}
			// The channel coalesces to the newest value, but D may have
			// advanced again since that send; drain to the live value.
			if cur := r.s.db.DurableEpoch(); cur > d {
				d = cur
			}
			r.releaseUpTo(d)
		case <-r.stopc:
			r.releaseUpTo(^uint64(0))
			return
		}
	}
}

// releaseUpTo hands every response parked at an epoch ≤ d to its
// connection writer. Sends happen outside r.mu (they cannot block — done
// channels are buffered for exactly one response — but there is no reason
// to hold the lock across them).
func (r *releaser) releaseUpTo(d uint64) {
	r.mu.Lock()
	var out []parkedResp
	for e, list := range r.queue {
		if e <= d {
			out = append(out, list...)
			delete(r.queue, e)
		}
	}
	r.mu.Unlock()
	if len(out) == 0 {
		return
	}
	now := r.s.now()
	for i := range out {
		p := &out[i]
		lag := now - p.at
		if lag < 0 {
			lag = 0
		}
		r.lag.ObserveDuration(lag.Nanoseconds())
		if p.m.resp != nil && p.m.resp.Spans != nil {
			// The park-to-release wait is the group-commit fsync wait as
			// the client experiences it: account it to the Fsync span, so
			// a traced write's timeline covers its true commit point even
			// though no worker ever blocked on it.
			p.m.resp.Spans.Fsync += lag
		}
		p.done <- p.m
		r.parked.Add(-1)
		r.released.Add(1)
	}
}

func (r *releaser) stop() {
	close(r.stopc)
	<-r.done
}
