package server_test

import (
	"net"
	"testing"

	"silo"
	"silo/client"
	"silo/server"
)

// TestCleanServerStopRecoversAcknowledgedWrites asserts the server-level
// clean-shutdown contract: every write a client saw acknowledged before the
// server was stopped cleanly (connections closed, server closed, database
// closed — the silo-server signal path) is present after recovery.
func TestCleanServerStopRecoversAcknowledgedWrites(t *testing.T) {
	dir := t.TempDir()
	open := func() (*silo.DB, *server.Server, *client.Client) {
		db, err := silo.Open(silo.Options{
			Workers:    2,
			Durability: &silo.DurabilityOptions{Dir: dir},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(db, server.Options{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		cl, err := client.Dial(ln.Addr().String(), client.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return db, srv, cl
	}

	db, srv, cl := open()
	if err := cl.Insert("t", []byte("acked"), []byte("before-stop")); err != nil {
		t.Fatal(err)
	}
	// Clean stop, mirroring silo-server's shutdown order. No durability
	// wait: the put's epoch may not be durable yet, and must still survive.
	cl.Close()
	srv.Close()
	db.Close()

	db2, srv2, cl2 := open()
	defer func() {
		cl2.Close()
		srv2.Close()
		db2.Close()
	}()
	if _, err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	v, err := cl2.Get("t", []byte("acked"))
	if err != nil {
		t.Fatalf("acknowledged write lost across clean server stop: %v", err)
	}
	if string(v) != "before-stop" {
		t.Fatalf("recovered %q", v)
	}
}
