package server_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"silo"
	"silo/client"
	"silo/server"
	"silo/wire"
)

// startServer spins up a database and server on a loopback listener and
// returns a connected client; everything is torn down with the test.
func startServer(t *testing.T, dbOpts silo.Options, srvOpts server.Options, clOpts client.Options) (*silo.DB, *server.Server, *client.Client) {
	t.Helper()
	if dbOpts.Workers == 0 {
		dbOpts.Workers = 2
	}
	db, err := silo.Open(dbOpts)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, srvOpts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	cl, err := client.Dial(ln.Addr().String(), clOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
		db.Close()
	})
	return db, srv, cl
}

func be64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func TestOpsOverTheWire(t *testing.T) {
	_, _, cl := startServer(t, silo.Options{}, server.Options{}, client.Options{})

	// Insert + Get.
	if err := cl.Insert("t", []byte("k1"), []byte("v1")); err != nil {
		t.Fatalf("insert: %v", err)
	}
	v, err := cl.Get("t", []byte("k1"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("get = %q, %v; want v1", v, err)
	}

	// Error mapping.
	if _, err := cl.Get("t", []byte("missing")); !errors.Is(err, client.ErrNotFound) {
		t.Errorf("get missing: %v, want ErrNotFound", err)
	}
	if err := cl.Insert("t", []byte("k1"), []byte("dup")); !errors.Is(err, client.ErrKeyExists) {
		t.Errorf("dup insert: %v, want ErrKeyExists", err)
	}
	if err := cl.Put("t", []byte("missing"), []byte("x")); !errors.Is(err, client.ErrNotFound) {
		t.Errorf("put missing: %v, want ErrNotFound", err)
	}
	if err := cl.Delete("t", []byte("missing")); !errors.Is(err, client.ErrNotFound) {
		t.Errorf("delete missing: %v, want ErrNotFound", err)
	}
	if _, err := cl.Add("t", []byte("k1"), 1); !errors.Is(err, client.ErrBadValue) {
		t.Errorf("add on 2-byte value: %v, want ErrBadValue", err)
	}
	if _, err := cl.Get("t", nil); !errors.Is(err, client.ErrInvalid) {
		t.Errorf("get empty key: %v, want ErrInvalid", err)
	}

	// Put + Delete round trip.
	if err := cl.Put("t", []byte("k1"), []byte("v2")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if v, _ := cl.Get("t", []byte("k1")); string(v) != "v2" {
		t.Fatalf("get after put = %q", v)
	}
	if err := cl.Delete("t", []byte("k1")); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := cl.Get("t", []byte("k1")); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}

	// Add is a serializable counter.
	if err := cl.Insert("t", []byte("ctr"), be64(10)); err != nil {
		t.Fatal(err)
	}
	if n, err := cl.Add("t", []byte("ctr"), -3); err != nil || n != 7 {
		t.Fatalf("add = %d, %v; want 7", n, err)
	}
	if v, _ := cl.Get("t", []byte("ctr")); binary.BigEndian.Uint64(v) != 7 {
		t.Fatalf("counter = %x", v)
	}
}

func TestScanOverTheWire(t *testing.T) {
	_, _, cl := startServer(t, silo.Options{}, server.Options{}, client.Options{})
	for i := 0; i < 10; i++ {
		if err := cl.Insert("s", []byte{byte('a' + i)}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Full scan.
	pairs, err := cl.Scan("s", nil, nil, 0)
	if err != nil || len(pairs) != 10 {
		t.Fatalf("full scan: %d pairs, %v", len(pairs), err)
	}
	for i, p := range pairs {
		if p.Key[0] != byte('a'+i) || p.Value[0] != byte(i) {
			t.Fatalf("pair %d = %q/%x", i, p.Key, p.Value)
		}
	}
	// Bounded scan [c, f).
	pairs, err = cl.Scan("s", []byte("c"), []byte("f"), 0)
	if err != nil || len(pairs) != 3 || pairs[0].Key[0] != 'c' {
		t.Fatalf("bounded scan: %+v, %v", pairs, err)
	}
	// Limited scan.
	pairs, err = cl.Scan("s", nil, nil, 4)
	if err != nil || len(pairs) != 4 {
		t.Fatalf("limited scan: %d pairs, %v", len(pairs), err)
	}
	// Server-side cap.
	_, srv, cl2 := startServer(t, silo.Options{}, server.Options{MaxScan: 2}, client.Options{})
	_ = srv
	for i := 0; i < 5; i++ {
		if err := cl2.Insert("s", []byte{byte('a' + i)}, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// A limit beyond the cap is rejected (see TestScanLimitOverCapRejected);
	// omitting the limit scans up to the cap.
	if _, err := cl2.Scan("s", nil, nil, 100); !errors.Is(err, client.ErrInvalid) {
		t.Fatalf("over-cap scan: %v, want ErrInvalid", err)
	}
	pairs, err = cl2.Scan("s", nil, nil, 0)
	if err != nil || len(pairs) != 2 {
		t.Fatalf("capped scan: %d pairs, %v", len(pairs), err)
	}
}

func TestTxnFrame(t *testing.T) {
	_, _, cl := startServer(t, silo.Options{}, server.Options{}, client.Options{})
	if err := cl.Insert("a", []byte("x"), be64(100)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert("a", []byte("y"), be64(200)); err != nil {
		t.Fatal(err)
	}

	// Multi-op transaction touching two tables, with positional results.
	res, err := cl.Txn().
		Add("a", []byte("x"), -10).
		Add("a", []byte("y"), 10).
		Get("a", []byte("x")).
		Insert("b", []byte("log"), []byte("transferred")).
		Exec()
	if err != nil {
		t.Fatalf("txn: %v", err)
	}
	if len(res) != 4 {
		t.Fatalf("txn results: %d", len(res))
	}
	if !res[0].HasValue || binary.BigEndian.Uint64(res[0].Value) != 90 {
		t.Errorf("add result = %+v", res[0])
	}
	if !res[2].HasValue || binary.BigEndian.Uint64(res[2].Value) != 90 {
		t.Errorf("get result = %+v", res[2])
	}
	if res[3].HasValue {
		t.Errorf("insert result carries a value")
	}

	// A failing op aborts the whole transaction: the insert before the
	// bad get must not survive.
	_, err = cl.Txn().
		Insert("b", []byte("orphan"), []byte("nope")).
		Get("a", []byte("missing")).
		Exec()
	if !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("aborting txn: %v, want ErrNotFound", err)
	}
	if _, err := cl.Get("b", []byte("orphan")); !errors.Is(err, client.ErrNotFound) {
		t.Errorf("aborted txn leaked a write: %v", err)
	}

	// Empty txn is a no-op client-side.
	if res, err := cl.Txn().Exec(); err != nil || res != nil {
		t.Errorf("empty txn = %+v, %v", res, err)
	}
}

func TestNoAutoCreate(t *testing.T) {
	db, _, cl := startServer(t, silo.Options{},
		server.Options{DisableAutoCreate: true}, client.Options{})
	db.CreateTable("known")

	if err := cl.Insert("known", []byte("k"), []byte("v")); err != nil {
		t.Fatalf("insert into precreated table: %v", err)
	}
	if _, err := cl.Get("unknown", []byte("k")); !errors.Is(err, client.ErrNoTable) {
		t.Errorf("get from unknown table: %v, want ErrNoTable", err)
	}
	if _, err := cl.Txn().Get("unknown", []byte("k")).Exec(); !errors.Is(err, client.ErrNoTable) {
		t.Errorf("txn on unknown table: %v, want ErrNoTable", err)
	}
	if db.Table("unknown") != nil {
		t.Error("server created a table despite DisableAutoCreate")
	}
}

// TestMalformedFrame speaks raw bytes: a garbage frame must produce one
// ERR/proto response followed by connection close — never a panic.
func TestMalformedFrame(t *testing.T) {
	db, err := silo.Open(silo.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := server.New(db, server.Options{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))

	// Frame of one unknown kind byte.
	if _, err := nc.Write([]byte{0, 0, 0, 1, 0x7f}); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.ReadFrame(nc, 0)
	if err != nil {
		t.Fatalf("reading error response: %v", err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		t.Fatalf("decoding error response: %v", err)
	}
	if resp.Kind != wire.KindErr || resp.Code != wire.CodeProto {
		t.Fatalf("response = %+v, want ERR/proto", resp)
	}
	// The server hangs up after a protocol error.
	if _, err := nc.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("after protocol error: read err = %v, want EOF", err)
	}

	// An oversized length prefix is rejected outright (connection drops
	// without a response — framing is unrecoverable).
	nc2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	nc2.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc2.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	buf, err := io.ReadAll(nc2)
	if err != nil || len(buf) != 0 {
		t.Fatalf("oversized frame: read %x, %v; want clean EOF", buf, err)
	}
}

// TestPipelining issues a burst of raw back-to-back requests on one
// connection and checks responses come back in request order.
func TestPipelining(t *testing.T) {
	db, err := silo.Open(silo.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := server.New(db, server.Options{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))

	// Pipelined requests may execute out of order across workers (only
	// responses are FIFO), so writes land in one burst and are awaited
	// before the dependent reads go out in a second burst.
	const n = 100
	var out []byte
	for i := 0; i < n; i++ {
		out, err = wire.AppendRequest(out, &wire.Request{Ops: []wire.Op{{
			Kind: wire.KindInsert, Table: "p",
			Key:   []byte{byte(i)},
			Value: bytes.Repeat([]byte{byte(i)}, 3),
		}}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nc.Write(out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		payload, err := wire.ReadFrame(nc, 0)
		if err != nil {
			t.Fatalf("insert response %d: %v", i, err)
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil || resp.Kind != wire.KindOK {
			t.Fatalf("insert response %d = %+v, %v", i, resp, err)
		}
	}
	out = out[:0]
	for i := 0; i < n; i++ {
		out, err = wire.AppendRequest(out, &wire.Request{Ops: []wire.Op{{
			Kind: wire.KindGet, Table: "p", Key: []byte{byte(i)},
		}}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nc.Write(out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		payload, err := wire.ReadFrame(nc, 0)
		if err != nil {
			t.Fatalf("get response %d: %v", i, err)
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil || resp.Kind != wire.KindValue {
			t.Fatalf("get response %d = %+v, %v", i, resp, err)
		}
		if !bytes.Equal(resp.Value, bytes.Repeat([]byte{byte(i)}, 3)) {
			t.Fatalf("get response %d out of order: %x", i, resp.Value)
		}
	}
	if st := srv.Stats(); st.Requests != 2*n {
		t.Errorf("requests = %d, want %d", st.Requests, 2*n)
	}
}
