package server

import (
	"bufio"
	"net"
	"time"

	"silo/internal/trace"
	"silo/wire"
)

// handleConn runs one connection: a reader loop (this goroutine) that
// decodes frames and dispatches jobs, and a writer goroutine that sends
// responses back in request order. The reader pushes each job's result
// channel onto the in-order pending queue before dispatching it, so wire
// order always matches request order even though jobs complete on
// different workers.
func (s *Server) handleConn(c net.Conn, id uint64) {
	defer s.connWG.Done()
	s.db.Flight().RecordShared(trace.EvConnOpen, 0, 0, id, nil)
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
		s.db.Flight().RecordShared(trace.EvConnClose, 0, 0, id, nil)
	}()

	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}

	pending := make(chan chan wire.Response, s.opts.Pipeline)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.writeLoop(c, pending)
	}()

	br := bufio.NewReaderSize(c, 64<<10)
	for {
		payload, err := wire.ReadFrame(br, s.opts.MaxFrame)
		if err != nil {
			break
		}
		req, derr := wire.DecodeRequest(payload)
		ch := make(chan wire.Response, 1)
		if derr != nil {
			// A malformed frame poisons the stream (framing may be lost):
			// answer it and hang up.
			ch <- wire.Err(wire.CodeProto, derr.Error())
			s.errors64.Add(1)
			pending <- ch
			break
		}
		// Order matters: enqueue on pending (FIFO with the writer) before
		// the job becomes runnable. Both sends can block — pending for
		// per-connection backpressure, jobs when all workers are busy —
		// but never forever: the writer drains pending as long as
		// executors run, and executors outlive every connection handler.
		pending <- ch
		s.obs.depth.Observe(uint64(len(pending)))
		s.jobs <- &job{req: req, enq: time.Now(), enqTS: s.now(), done: ch}
	}
	close(pending)
	<-writerDone
}

// writeLoop drains the pending queue in order, encoding each response as
// its result arrives. The output buffer is flushed only when no further
// response is immediately ready, so pipelined bursts coalesce into few
// writes. On a write error it keeps draining so executors and the reader
// never block on a dead connection.
func (s *Server) writeLoop(c net.Conn, pending chan chan wire.Response) {
	bw := bufio.NewWriterSize(c, 64<<10)
	var buf []byte
	broken := false
	for ch := range pending {
		resp := <-ch
		if broken {
			continue
		}
		var err error
		buf, err = wire.AppendResponse(buf[:0], &resp)
		if err != nil {
			// Encoding failure is a server bug; degrade to an ERR frame
			// rather than desynchronizing the stream.
			buf, _ = wire.AppendResponse(buf[:0], &wire.Response{
				Kind: wire.KindErr, Code: wire.CodeInternal, Msg: err.Error(),
			})
		}
		if _, err := bw.Write(buf); err != nil {
			broken = true
			continue
		}
		if len(pending) == 0 {
			if err := bw.Flush(); err != nil {
				broken = true
			}
		}
	}
	if !broken {
		bw.Flush()
	}
}
