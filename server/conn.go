package server

import (
	"bufio"
	"net"
	"time"

	"silo/internal/trace"
	"silo/wire"
)

// handleConn runs one connection: a reader loop (this goroutine) that
// decodes frames and dispatches jobs, and a writer goroutine that sends
// responses back in request order. The reader pushes each job onto the
// in-order pending queue before dispatching it, so wire order always
// matches request order even though jobs complete on different workers.
func (s *Server) handleConn(c net.Conn, id uint64) {
	defer s.connWG.Done()
	s.db.Flight().RecordShared(trace.EvConnOpen, 0, 0, id, nil)
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
		s.db.Flight().RecordShared(trace.EvConnClose, 0, 0, id, nil)
	}()

	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}

	pending := make(chan *job, s.opts.Pipeline)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.writeLoop(c, pending)
	}()

	br := bufio.NewReaderSize(c, 64<<10)
	for {
		j := s.getJob()
		payload, err := wire.ReadFrameInto(br, s.opts.MaxFrame, j.payload)
		if err != nil {
			s.putJob(j)
			break
		}
		j.payload = payload
		if derr := wire.DecodeRequestInto(payload, &j.req, &j.scratch); derr != nil {
			// A malformed frame poisons the stream (framing may be lost):
			// answer it and hang up.
			s.errors64.Add(1)
			er := wire.Err(wire.CodeProto, derr.Error())
			j.done <- s.encodeResp(&er)
			pending <- j
			break
		}
		// Order matters: enqueue on pending (FIFO with the writer) before
		// the job becomes runnable. Both sends can block — pending for
		// per-connection backpressure, jobs when all workers are busy —
		// but never forever: the writer drains pending as long as
		// executors run, and executors outlive every connection handler.
		j.enq = time.Now()
		j.enqTS = s.now()
		pending <- j
		s.obs.depth.Observe(uint64(len(pending)))
		s.jobs <- j
	}
	close(pending)
	<-writerDone
}

// flushBytes caps how many encoded bytes the writer queues before
// forcing a writev even while more responses are ready: a pipeline of
// large SCANR pages flushes in bounded chunks instead of accumulating
// the whole burst in memory.
const flushBytes = 1 << 20

// writeLoop drains the pending queue in order. Each response arrives
// already encoded in a recycled buffer (TRACER frames, patched at
// release time, are encoded here) and is queued as one scatter-gather
// segment; the batch is flushed with a single writev when no further
// response is immediately ready, so a pipelined burst costs one syscall
// and large pages go to the socket without a coalescing copy. Buffers
// return to the pool only after the writev that covered them. On a
// write error it keeps draining so executors and the reader never block
// on a dead connection.
func (s *Server) writeLoop(c net.Conn, pending chan *job) {
	var (
		segs   = make([][]byte, 0, 64)
		owned  = make([]*respBuf, 0, 64)
		queued int
		broken bool
	)
	flush := func() {
		if len(segs) > 0 && !broken {
			bufs := net.Buffers(segs)
			if _, err := bufs.WriteTo(c); err != nil {
				broken = true
			}
		}
		for i, rb := range owned {
			s.putBuf(rb)
			owned[i] = nil
		}
		segs = segs[:0]
		owned = owned[:0]
		queued = 0
	}
	for j := range pending {
		m := <-j.done
		s.putJob(j)
		if m.resp != nil {
			// Late-encoded path: the response stayed decoded past the
			// executor (a TRACER whose Fsync span the releaser patched).
			rb := s.getBuf()
			b, err := wire.AppendResponse(rb.b[:0], m.resp)
			if err != nil {
				// Encoding failure is a server bug; degrade to an ERR frame
				// rather than desynchronizing the stream.
				b, _ = wire.AppendResponse(rb.b[:0], &wire.Response{
					Kind: wire.KindErr, Code: wire.CodeInternal, Msg: err.Error(),
				})
			}
			rb.b = b
			m = outMsg{rb: rb}
		}
		if broken {
			s.putBuf(m.rb)
			continue
		}
		segs = append(segs, m.rb.b)
		owned = append(owned, m.rb)
		queued += len(m.rb.b)
		if len(pending) == 0 || queued >= flushBytes {
			flush()
		}
	}
	flush()
}
