package server_test

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"silo"
	"silo/client"
	"silo/server"
)

// TestE2EStatsLifecycle walks the STATS frame through a server's life:
// a fresh snapshot is valid but quiet, a worked snapshot shows every
// layer's families with plausible values, and totals are monotone across
// consecutive snapshots.
func TestE2EStatsLifecycle(t *testing.T) {
	dir := t.TempDir()
	db, err := silo.Open(silo.Options{
		Workers:       2,
		EpochInterval: time.Millisecond,
		Durability:    &silo.DurabilityOptions{Dir: dir, Loggers: 1, Sync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.CreateTable("kv")
	srv := server.New(db, server.Options{DisableAutoCreate: true})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	cl, err := client.Dial(ln.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Before any data traffic: the snapshot decodes and carries the core
	// families, with nothing committed over the wire yet.
	snap, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Get("silo_core_commits_total", "") == nil {
		t.Fatal("fresh snapshot missing silo_core_commits_total")
	}
	if got := snap.Value("silo_table_writes_total", "kv"); got != 0 {
		t.Fatalf("fresh kv writes = %d", got)
	}

	for i := 0; i < 32; i++ {
		if err := cl.Insert("kv", []byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Get("kv", []byte{3}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Scan("kv", []byte{0}, nil, 10); err != nil {
		t.Fatal(err)
	}

	worked, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got := worked.Value("silo_core_commits_total", ""); got < 32 {
		t.Errorf("commits = %d, want >= 32", got)
	}
	if got := worked.Value("silo_table_writes_total", "kv"); got != 32 {
		t.Errorf("kv writes = %d, want 32", got)
	}
	if got := worked.Value("silo_server_requests_total", ""); got < 35 {
		t.Errorf("server requests = %d, want >= 35", got)
	}
	for _, op := range []string{"INSERT", "GET", "SCAN"} {
		h := worked.Get("silo_server_request_ns", op)
		if h == nil || h.Hist.Count == 0 {
			t.Errorf("no %s latency series", op)
		}
	}
	if worked.Get("silo_wal_durable_epoch", "") == nil {
		t.Error("missing WAL families")
	}
	// The puts committed durably, so at least one logger pass fsynced.
	waitFor(t, func() bool {
		s, err := cl.Stats()
		if err != nil {
			t.Fatal(err)
		}
		h := s.Get("silo_wal_fsync_ns", "")
		return h != nil && h.Hist.Count > 0
	}, "fsync histogram stayed empty")

	again, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if again.Value("silo_core_commits_total", "") < worked.Value("silo_core_commits_total", "") {
		t.Error("commit total went backwards")
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdminHandler drives the admin mux the -admin listener serves:
// /metrics speaks Prometheus text, /debug/vars is JSON with both snapshot
// series and process vars, and the pprof index answers — all while the
// server executes requests.
func TestAdminHandler(t *testing.T) {
	_, srv, cl := startServer(t, silo.Options{}, server.Options{}, client.Options{})
	for i := 0; i < 8; i++ {
		if err := cl.Insert("t", []byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()

	body := httpGet(t, admin.URL+"/metrics")
	for _, want := range []string{
		"# TYPE silo_core_commits_total counter",
		"silo_table_writes_total{table=\"t\"} 8",
		"silo_server_request_ns_count{op=\"INSERT\"}",
		"silo_index_scans_total{mode=\"batched\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var vars map[string]any
	if err := json.Unmarshal([]byte(httpGet(t, admin.URL+"/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["silo_core_commits_total"]; !ok {
		t.Error("/debug/vars missing snapshot series")
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing process vars")
	}

	if !strings.Contains(httpGet(t, admin.URL+"/debug/pprof/"), "goroutine") {
		t.Error("pprof index did not render")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
