package server_test

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"silo"
	"silo/client"
	"silo/server"
)

// TestTraceOverTheWire sends a TRACE frame through a durable server and
// checks the TRACER response: correct transaction results plus a span
// timeline whose execute phase is non-zero and whose fsync-wait covers
// the group-commit durability point.
func TestTraceOverTheWire(t *testing.T) {
	dir := t.TempDir()
	db, err := silo.Open(silo.Options{
		Workers:       2,
		EpochInterval: time.Millisecond,
		Durability:    &silo.DurabilityOptions{Dir: dir, Loggers: 1, Sync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.CreateTable("acct")
	srv := server.New(db, server.Options{DisableAutoCreate: true})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	cl, err := client.Dial(ln.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	results, sp, err := cl.Txn().
		Insert("acct", []byte("alice"), be64(100)).
		Get("acct", []byte("alice")).
		Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || !results[1].HasValue || string(results[1].Value) != string(be64(100)) {
		t.Fatalf("trace results = %+v", results)
	}
	if sp == nil {
		t.Fatal("no spans on TRACER response")
	}
	if sp.TID == 0 {
		t.Error("traced commit has zero TID")
	}
	if sp.Exec <= 0 {
		t.Errorf("execute span = %v, want > 0", sp.Exec)
	}
	if sp.Fsync <= 0 {
		t.Errorf("fsync-wait span = %v, want > 0 on a sync durable server", sp.Fsync)
	}
	for _, d := range []time.Duration{sp.Queue, sp.Validate, sp.Log, sp.Respond} {
		if d < 0 {
			t.Errorf("negative span in %v", sp)
		}
	}

	// An empty-keyed op aborts the transaction; the TRACE frame answers
	// with a mapped error, not a TRACER frame.
	if _, _, err := cl.Txn().Get("acct", []byte("missing")).Trace(); err == nil {
		t.Fatal("traced read of a missing key did not error")
	}
}

// TestSlowCaptureAndFlightEndpoints arms slow-op capture with a 1ns
// threshold (everything is slow) and checks both debug endpoints: the
// slow buffer shows captured ops with span timelines, and the flight
// recorder shows commit and connection-lifecycle events, in text and
// JSON.
func TestSlowCaptureAndFlightEndpoints(t *testing.T) {
	_, srv, cl := startServer(t, silo.Options{},
		server.Options{SlowThreshold: time.Nanosecond}, client.Options{})

	for i := 0; i < 8; i++ {
		if err := cl.Insert("t", []byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Txn().
		Insert("t", []byte("a"), []byte("1")).
		Get("t", []byte("a")).
		Exec(); err != nil {
		t.Fatal(err)
	}

	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()

	slow := httpGet(t, admin.URL+"/debug/slow")
	if !strings.Contains(slow, "slow ops:") || !strings.Contains(slow, "table=t") {
		t.Errorf("/debug/slow missing captures:\n%s", slow)
	}
	if !strings.Contains(slow, "TXN") {
		t.Errorf("/debug/slow missing the TXN capture:\n%s", slow)
	}

	var slowDoc struct {
		Captured uint64 `json:"captured"`
		Ops      []struct {
			Kind    string `json:"kind"`
			Table   string `json:"table"`
			TotalNs int64  `json:"total_ns"`
			ExecNs  int64  `json:"exec_ns"`
		} `json:"ops"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, admin.URL+"/debug/slow?format=json")), &slowDoc); err != nil {
		t.Fatalf("/debug/slow?format=json is not JSON: %v", err)
	}
	if slowDoc.Captured < 9 || len(slowDoc.Ops) == 0 {
		t.Errorf("slow JSON captured=%d ops=%d, want >= 9 captures", slowDoc.Captured, len(slowDoc.Ops))
	}
	for _, op := range slowDoc.Ops {
		if op.TotalNs <= 0 {
			t.Errorf("slow op %s has non-positive total", op.Kind)
		}
	}

	flight := httpGet(t, admin.URL+"/debug/flight")
	if !strings.Contains(flight, "flight recorder:") || !strings.Contains(flight, "commit") {
		t.Errorf("/debug/flight missing commit events:\n%s", flight)
	}
	if !strings.Contains(flight, "conn_open") {
		t.Errorf("/debug/flight missing connection lifecycle:\n%s", flight)
	}

	var flightDoc struct {
		Events int `json:"events"`
		Ring   []struct {
			Kind string `json:"kind"`
		} `json:"ring"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, admin.URL+"/debug/flight?format=json")), &flightDoc); err != nil {
		t.Fatalf("/debug/flight?format=json is not JSON: %v", err)
	}
	if flightDoc.Events == 0 || len(flightDoc.Ring) != flightDoc.Events {
		t.Errorf("flight JSON events=%d ring=%d", flightDoc.Events, len(flightDoc.Ring))
	}
}

// TestConcurrentStatsAndFlightDump hammers commits from several client
// goroutines while others continuously dump the flight recorder and
// scrape STATS — the seqlock ring reader and the metric snapshots must
// be race-clean against live writers (this is the test the -race CI
// matrix leans on).
func TestConcurrentStatsAndFlightDump(t *testing.T) {
	db, srv, cl := startServer(t, silo.Options{Workers: 4}, server.Options{}, client.Options{Conns: 2})
	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()

	// Seed a small keyset per writer, then update it in a loop (Put is
	// update-only); the shared tail key gives validation something to
	// conflict on, so abort events land in the ring too.
	for g := 0; g < 4; g++ {
		for k := 0; k < 4; k++ {
			if err := cl.Insert("t", []byte{byte(g), byte(k)}, []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cl.Insert("t", []byte("hot"), be64(0)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := []byte{byte(g), byte(i % 4)}
				if err := cl.Put("t", key, []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if _, err := cl.Add("t", []byte("hot"), 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if len(db.Flight().Dump()) == 0 {
				// The ring fills within the first few commits; an empty
				// dump mid-run would mean the reader lost everything.
				continue
			}
			httpGet(t, admin.URL+"/debug/flight")
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := cl.Stats(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if len(db.Flight().Dump()) == 0 {
		t.Fatal("flight recorder empty after concurrent run")
	}
}
