// Package server exposes a silo database over TCP, speaking the
// length-prefixed binary protocol of package wire.
//
// Every request executes as a one-shot serializable transaction on one of
// the database's workers. The server runs one executor goroutine per
// worker (Silo's one-worker-per-core model); requests from all connections
// funnel into a shared dispatch queue, so an idle worker picks up the next
// request regardless of which connection it arrived on, and conflicts are
// retried transparently by DB.Run before a response is sent.
//
// Responses are written back on each connection in request order, which
// lets clients pipeline: a connection's reader enqueues work and its
// writer drains an in-order queue of pending results, batching frame
// writes while responses are ready.
package server

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"silo"
	"silo/wire"
)

// Options configures a Server.
type Options struct {
	// Addr is the listen address for ListenAndServe (e.g. ":4555").
	Addr string
	// MaxFrame caps accepted request payloads (default wire.MaxFrame).
	MaxFrame int
	// Pipeline is the per-connection cap on in-flight requests; a reader
	// that runs ahead of its writer by this many requests blocks (default
	// 128).
	Pipeline int
	// MaxScan caps the pairs returned by one SCAN, also bounding response
	// frames; requests may ask for less, never more (default 65536).
	MaxScan int
	// DisableAutoCreate makes requests against unknown tables fail with
	// CodeNoTable instead of creating the table on first use. Durability
	// deployments should pre-create tables (table IDs are part of the log
	// format) and set this.
	DisableAutoCreate bool
	// SlowThreshold force-traces every request when set: any op whose
	// client-visible latency (queue wait included) meets or exceeds it is
	// captured — span timeline, table, outcome — into a bounded
	// recent-slow buffer served at /debug/slow. Zero disables capture
	// (and its tracing overhead).
	SlowThreshold time.Duration
	// Acks selects when write responses are released to clients (see
	// AckMode). The zero value, AckImmediate, keeps the historical
	// ack-at-memory-commit behavior; AckGroup gives the paper's §4.10
	// guarantee — an OK frame means the write's epoch is durable —
	// without blocking workers. AckGroup and AckPerRequest require the
	// database to have durability; without it they degrade to
	// AckImmediate (there is no durable epoch to wait for).
	Acks AckMode
	// Backoff enables the contention-aware retry policy: conflicted
	// transactions whose blamed key is in the flight recorder's current
	// hot set (or whose aborts compound) wait an exponentially growing,
	// jittered delay before retrying instead of spinning. Uncontended
	// transactions never consult it past a nil check. See backoff.go.
	Backoff bool
	// noReuse disables every recycling path — pooled jobs, response
	// buffers, decode scratch, per-worker exec state — so each request
	// allocates fresh memory end to end. It exists for the recycling
	// safety tests, which compare a recycled server's response bytes
	// against this build's, and is deliberately unexported.
	noReuse bool
}

// Stats are cumulative server counters, readable while serving.
type Stats struct {
	Conns    uint64 // connections accepted
	Requests uint64 // frames executed (a TXN counts once)
	Errors   uint64 // ERR responses sent
}

// Server serves a silo.DB over TCP.
type Server struct {
	db   *silo.DB
	opts Options
	jobs chan *job

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool

	connWG   sync.WaitGroup
	workerWG sync.WaitGroup

	conns64    atomic.Uint64
	requests64 atomic.Uint64
	errors64   atomic.Uint64

	// wobs are the per-executor metrics shards; obs holds the shared
	// cells. Both are scraped by STATS frames and the admin endpoint.
	wobs []*workerObs
	obs  serverObs

	// slow is the bounded ring of recent slow-op captures (see
	// Options.SlowThreshold), served at /debug/slow.
	slow slowBuf

	// ackMode is the effective ack mode (Options.Acks degraded to
	// AckImmediate when the database has no durability); rel is the
	// group-commit release pipeline, non-nil only under AckGroup.
	ackMode AckMode
	rel     *releaser

	// bo is the contention-aware retry policy, non-nil only when
	// Options.Backoff is set.
	bo *backoffPolicy
}

// New creates a server for db and starts its per-worker executors. The
// caller still owns db and must not drive the workers concurrently with
// the server (the server's executors are the worker goroutines).
func New(db *silo.DB, opts Options) *Server {
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = wire.MaxFrame
	}
	if opts.Pipeline <= 0 {
		opts.Pipeline = 128
	}
	if opts.MaxScan <= 0 {
		opts.MaxScan = 65536
	}
	s := &Server{
		db:        db,
		opts:      opts,
		jobs:      make(chan *job, db.Workers()),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	s.wobs = make([]*workerObs, db.Workers())
	for i := range s.wobs {
		s.wobs[i] = &workerObs{}
	}
	s.ackMode = opts.Acks
	if s.ackMode == AckGroup {
		if ch, ok := db.DurableNotify(); ok {
			s.rel = newReleaser(s, ch)
		} else {
			s.ackMode = AckImmediate
		}
	} else if s.ackMode == AckPerRequest && !db.HasDurability() {
		s.ackMode = AckImmediate
	}
	if opts.Backoff {
		s.bo = newBackoffPolicy(s)
	}
	for i := 0; i < db.Workers(); i++ {
		s.workerWG.Add(1)
		go s.workerLoop(i)
	}
	return s
}

// ListenAndServe listens on Options.Addr and serves until Close.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close (which returns nil) or an
// accept error. Multiple Serve calls on different listeners may run
// concurrently.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: closed")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()

	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		id := s.conns64.Add(1)
		go s.handleConn(c, id)
	}
}

// Close stops the server: listeners and connections are closed, in-flight
// requests finish, executors exit. The database is left open.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := make([]net.Listener, 0, len(s.listeners))
	for ln := range s.listeners {
		lns = append(lns, ln)
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	// Executors keep draining until every connection handler has flushed
	// its queued jobs, so readers blocked on a full dispatch queue make
	// progress and exit.
	s.connWG.Wait()
	close(s.jobs)
	s.workerWG.Wait()
	// Stop the release pipeline after the executors: nothing can park
	// anymore, and the flush hands any still-parked responses to their
	// (buffered, possibly dead) result channels. The database is still
	// open here, so in the normal close order those epochs were already
	// durable and released; the flush matters only when the caller closed
	// the database first.
	if s.rel != nil {
		s.rel.stop()
	}
	if s.bo != nil {
		s.bo.stop()
	}
	return nil
}

// AckMode reports the server's effective ack mode (Options.Acks, degraded
// to AckImmediate when the database has no durability).
func (s *Server) AckMode() AckMode { return s.ackMode }

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Conns:    s.conns64.Load(),
		Requests: s.requests64.Load(),
		Errors:   s.errors64.Load(),
	}
}

// Addr returns the address of one active listener, or "".
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ln := range s.listeners {
		return ln.Addr().String()
	}
	return ""
}
