package server

import (
	"encoding/binary"
	"errors"
	"fmt"

	"silo"
	"silo/wire"
)

// execState is one executor's recycled scratch for the allocation-free
// steady state: value buffers, a response arena, resolved-table and
// result slices, and the transaction closures pre-bound once so s.run
// never allocates a closure per request. Response slices built here
// alias the state and are valid only until the worker's next exec;
// respond encodes them into a wire frame before that (the lifecycle
// respond documents). Traced requests bypass it entirely.
type execState struct {
	s *Server
	w int

	// Per-request inputs the pre-bound closures read (set by the fast
	// paths before s.run, stable across OCC retries).
	op    *wire.Op
	t     *silo.Table
	limit int
	ops   []wire.Op

	// val is the GET/ADD read buffer; num holds ADD's 8-byte result.
	val []byte
	num [8]byte
	n   uint64

	// arena backs every response byte a request produces (scan pairs,
	// txn results); offs/resOff record offsets into it because the arena
	// may move while growing, and the Response slices are materialized
	// only after the transaction commits.
	arena  []byte
	offs   []kvOff
	pairs  []wire.KV
	tables []*silo.Table
	result []wire.TxnResult
	resOff [][2]int

	fnGet, fnPut, fnInsert, fnDelete, fnAdd, fnScan, fnTxn func(tx *silo.Tx) error
	fnVisit                                                func(k, v []byte) bool
}

// kvOff is one scan pair as offsets into the arena: key in [k0,k1),
// value in [k1,v1).
type kvOff struct{ k0, k1, v1 int }

func newExecState(s *Server, w int) *execState {
	st := &execState{s: s, w: w}
	st.fnGet = st.doGet
	st.fnPut = st.doPut
	st.fnInsert = st.doInsert
	st.fnDelete = st.doDelete
	st.fnAdd = st.doAdd
	st.fnScan = st.doScan
	st.fnTxn = st.doTxn
	st.fnVisit = st.scanVisit
	return st
}

// execFast runs one untraced single-op data request on the recycled
// exec state. Semantics match the allocating paths in exec exactly; the
// only difference is where the response bytes live.
func (s *Server) execFast(st *execState, op *wire.Op, t *silo.Table) wire.Response {
	st.op, st.t = op, t
	switch op.Kind {
	case wire.KindGet:
		if err := s.run(st.w, nil, st.fnGet); err != nil {
			return errResponse(err)
		}
		return wire.Response{Kind: wire.KindValue, Value: st.val}

	case wire.KindPut:
		if err := s.run(st.w, nil, st.fnPut); err != nil {
			return errResponse(err)
		}
		return wire.Response{Kind: wire.KindOK}

	case wire.KindInsert:
		if err := s.run(st.w, nil, st.fnInsert); err != nil {
			return errResponse(err)
		}
		return wire.Response{Kind: wire.KindOK}

	case wire.KindDelete:
		if err := s.run(st.w, nil, st.fnDelete); err != nil {
			return errResponse(err)
		}
		return wire.Response{Kind: wire.KindOK}

	case wire.KindAdd:
		if err := s.run(st.w, nil, st.fnAdd); err != nil {
			return errResponse(err)
		}
		binary.BigEndian.PutUint64(st.num[:], st.n)
		return wire.Response{Kind: wire.KindValue, Value: st.num[:]}

	case wire.KindScan:
		// Like ISCAN, a limit beyond the server's cap is rejected rather
		// than silently clamped: truncating to fewer results than
		// requested is indistinguishable from the range really ending.
		if op.Limit != 0 && int64(op.Limit) > int64(s.opts.MaxScan) {
			return wire.Err(wire.CodeInvalid,
				fmt.Sprintf("server: scan limit %d exceeds server maximum %d", op.Limit, s.opts.MaxScan))
		}
		st.limit = s.opts.MaxScan
		if op.Limit != 0 {
			st.limit = int(op.Limit)
		}
		if err := s.run(st.w, nil, st.fnScan); err != nil {
			return errResponse(err)
		}
		st.pairs = st.pairs[:0]
		for _, o := range st.offs {
			st.pairs = append(st.pairs, wire.KV{
				Key:   st.arena[o.k0:o.k1:o.k1],
				Value: st.arena[o.k1:o.v1:o.v1],
			})
		}
		return wire.Response{Kind: wire.KindScanR, Pairs: st.pairs}
	}
	return wire.Err(wire.CodeProto, "unexecutable kind "+op.Kind.String())
}

func (st *execState) doGet(tx *silo.Tx) error {
	v, err := tx.GetAppend(st.t, st.op.Key, st.val[:0])
	st.val = v
	return err
}

func (st *execState) doPut(tx *silo.Tx) error {
	return tx.Put(st.t, st.op.Key, st.op.Value)
}

func (st *execState) doInsert(tx *silo.Tx) error {
	return tx.Insert(st.t, st.op.Key, st.op.Value)
}

func (st *execState) doDelete(tx *silo.Tx) error {
	return tx.Delete(st.t, st.op.Key)
}

// doAdd is addValue on the recycled read buffer: the counter rewrite
// happens in place in st.val and Put copies it into the write set, so
// the buffer is free again at return.
func (st *execState) doAdd(tx *silo.Tx) error {
	v, err := tx.GetAppend(st.t, st.op.Key, st.val[:0])
	st.val = v
	if err != nil {
		return err
	}
	if len(v) < 8 {
		return errBadValue
	}
	n := binary.BigEndian.Uint64(v) + uint64(st.op.Delta)
	binary.BigEndian.PutUint64(v, n)
	st.n = n
	return tx.Put(st.t, st.op.Key, v)
}

func (st *execState) doScan(tx *silo.Tx) error {
	st.offs = st.offs[:0] // retried transactions restart the scan
	st.arena = st.arena[:0]
	return tx.Scan(st.t, st.op.Key, hiBound(st.op), st.fnVisit)
}

// scanVisit copies one pair into the arena. Offsets, not slices: the
// arena reallocates as it grows, and execFast materializes the KV
// slices only once the scan's transaction has committed.
func (st *execState) scanVisit(k, v []byte) bool {
	o := kvOff{k0: len(st.arena)}
	st.arena = append(st.arena, k...)
	o.k1 = len(st.arena)
	st.arena = append(st.arena, v...)
	o.v1 = len(st.arena)
	st.offs = append(st.offs, o)
	return len(st.offs) < st.limit
}

// execTxnFast is execTxn on the recycled exec state: same table
// resolution, same op semantics, with GET/ADD results accumulated in
// the arena instead of fresh allocations.
func (s *Server) execTxnFast(st *execState, ops []wire.Op) wire.Response {
	// Resolve tables outside the transaction: creation is not
	// transactional and must not be retried into the log out of order.
	if cap(st.tables) < len(ops) {
		st.tables = make([]*silo.Table, len(ops))
		st.result = make([]wire.TxnResult, len(ops))
		st.resOff = make([][2]int, len(ops))
	}
	st.tables = st.tables[:len(ops)]
	st.result = st.result[:len(ops)]
	st.resOff = st.resOff[:len(ops)]
	for i := range ops {
		t, err := s.table(ops[i].Table)
		if err != nil {
			return errResponse(err)
		}
		if ops[i].Kind != wire.KindGet {
			if err := s.writable(ops[i].Table); err != nil {
				return errResponse(err)
			}
		}
		st.tables[i] = t
	}
	st.ops = ops
	if err := s.run(st.w, nil, st.fnTxn); err != nil {
		return errResponse(err)
	}
	for i := range st.result {
		st.result[i] = wire.TxnResult{}
		if o := st.resOff[i]; o[0] >= 0 {
			st.result[i] = wire.TxnResult{HasValue: true, Value: st.arena[o[0]:o[1]:o[1]]}
		}
	}
	return wire.Response{Kind: wire.KindTxnR, Results: st.result}
}

func (st *execState) doTxn(tx *silo.Tx) error {
	ops, tables := st.ops, st.tables
	st.arena = st.arena[:0] // retried transactions restart
	for i := range st.resOff {
		st.resOff[i] = [2]int{-1, -1}
	}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case wire.KindGet:
			start := len(st.arena)
			a, err := tx.GetAppend(tables[i], op.Key, st.arena)
			st.arena = a
			if err != nil {
				return err
			}
			st.resOff[i] = [2]int{start, len(a)}
		case wire.KindPut:
			if err := tx.Put(tables[i], op.Key, op.Value); err != nil {
				return err
			}
		case wire.KindInsert:
			if err := tx.Insert(tables[i], op.Key, op.Value); err != nil {
				return err
			}
		case wire.KindDelete:
			if err := tx.Delete(tables[i], op.Key); err != nil {
				return err
			}
		case wire.KindAdd:
			// The whole record lands in the arena; the counter rewrite
			// happens there, Put copies it into the write set, and the
			// result is the record's first 8 bytes (the new counter,
			// exactly what the allocating path builds).
			start := len(st.arena)
			a, err := tx.GetAppend(tables[i], op.Key, st.arena)
			st.arena = a
			if err != nil {
				return err
			}
			v := a[start:]
			if len(v) < 8 {
				return errBadValue
			}
			n := binary.BigEndian.Uint64(v) + uint64(op.Delta)
			binary.BigEndian.PutUint64(v, n)
			if err := tx.Put(tables[i], op.Key, v); err != nil {
				return err
			}
			st.resOff[i] = [2]int{start, start + 8}
		default:
			return errors.New("server: bad txn op " + op.Kind.String())
		}
	}
	return nil
}
