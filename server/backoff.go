package server

import (
	"sync/atomic"
	"time"

	"silo"
	"silo/internal/trace"
)

// backoffPolicy is the contention-aware retry policy (Options.Backoff).
// DB.Run retries conflicts in a tight loop — the right call when a
// conflict was incidental, and the worst one when a key is genuinely
// hot: every immediate retry re-reads the same contended record, aborts
// again, and burns the CPU other workers need to make the conflicting
// commits finish ("On the Cost of Concurrency in Transactional Memory":
// under contention, aborts compound). The policy replaces the tight
// loop with per-attempt decisions:
//
//   - A conflict whose blamed key (DB.LastAbort, fed by the commit
//     protocol's validation forensics) is in the current hot set — the
//     flight recorder's TopConflicts, refreshed every refreshEvery —
//     waits an exponentially growing, jittered delay before retrying.
//   - A conflict off the hot set retries immediately, like DB.Run,
//     until escalateAfter consecutive aborts prove the contention is
//     real even if the hot set has not caught up yet.
//
// Uncontended transactions pay nothing: the fast path in Server.run is
// one nil check, and the first attempt of every transaction is
// unchanged. State is sharded per worker (each worker goroutine touches
// only its own shard; CollectObs sums the shards).
type backoffPolicy struct {
	s *Server

	// hot is the current hot-key set, published by the refresher and
	// read lock-free by workers between attempts.
	hot atomic.Pointer[map[uint64]struct{}]

	workers []backoffShard

	stopc chan struct{}
	done  chan struct{}
}

// backoffShard is one worker's policy state, padded so neighbouring
// workers' counters do not false-share.
type backoffShard struct {
	rng      uint64        // SplitMix64 state for jitter
	retries  atomic.Uint64 // conflicts the policy observed
	sleeps   atomic.Uint64 // retries that waited
	sleepNs  atomic.Uint64 // total ns spent waiting
	_padding [64 - 8*4]byte
}

const (
	// backoffBase and backoffCap bound the delay ladder: the first
	// backed-off retry waits ~backoffBase, each further abort doubles
	// it, and no retry ever waits more than backoffCap (a fraction of
	// the group-commit interval, so backoff never dominates latency).
	backoffBase = 2 * time.Microsecond
	backoffCap  = time.Millisecond
	// escalateAfter is how many consecutive aborts engage backoff even
	// when the blamed key is not (yet) in the hot set.
	escalateAfter = 4
	// refreshEvery is the hot-set refresh cadence; hotSetSize and
	// hotMinAborts bound what counts as hot (a key must account for
	// several recent aborts — a single recorded conflict is noise).
	refreshEvery = 250 * time.Millisecond
	hotSetSize   = 16
	hotMinAborts = 4
)

func newBackoffPolicy(s *Server) *backoffPolicy {
	p := &backoffPolicy{
		s:       s,
		workers: make([]backoffShard, s.db.Workers()),
		stopc:   make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i := range p.workers {
		p.workers[i].rng = uint64(i)*0x9E3779B97F4A7C15 + 1
	}
	go p.refreshLoop()
	return p
}

// run executes fn with the policy's retry schedule; semantics otherwise
// match DB.Run.
func (p *backoffPolicy) run(w int, fn func(tx *silo.Tx) error) error {
	sh := &p.workers[w]
	for attempt := 0; ; attempt++ {
		err := p.s.db.RunNoRetry(w, fn)
		if err != silo.ErrConflict {
			return err
		}
		sh.retries.Add(1)
		if d := p.delay(sh, w, attempt); d > 0 {
			sh.sleeps.Add(1)
			sh.sleepNs.Add(uint64(d))
			time.Sleep(d)
		}
	}
}

// delay decides how long attempt's retry should wait: zero off the hot
// set (below the escalation threshold), else an exponential step with
// ±50% jitter so colliding workers do not re-collide in lockstep.
func (p *backoffPolicy) delay(sh *backoffShard, w, attempt int) time.Duration {
	contended := false
	if _, hash, ok := p.s.db.LastAbort(w); ok {
		if hot := p.hot.Load(); hot != nil {
			_, contended = (*hot)[hash]
		}
	}
	if !contended && attempt < escalateAfter {
		return 0
	}
	d := backoffBase << min(attempt, 16)
	if d > backoffCap {
		d = backoffCap
	}
	// SplitMix64 step; jitter uniform in [d/2, d).
	sh.rng += 0x9E3779B97F4A7C15
	z := sh.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	half := uint64(d / 2)
	return time.Duration(half + z%half)
}

// refreshLoop republishes the hot set every refreshEvery: fold the
// flight recorder's recent abort events into TopConflicts and keep the
// keys with enough aborts to matter. Dumping the recorder is O(ring
// sizes) — microseconds at this cadence.
func (p *backoffPolicy) refreshLoop() {
	defer close(p.done)
	tick := time.NewTicker(refreshEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			p.refresh()
		case <-p.stopc:
			return
		}
	}
}

func (p *backoffPolicy) refresh() {
	fl := p.s.db.Flight()
	if fl == nil {
		return
	}
	hot := trace.TopConflicts(fl.Dump(), hotSetSize)
	m := make(map[uint64]struct{}, len(hot))
	for i := range hot {
		if hot[i].Count >= hotMinAborts {
			m[hot[i].Hash] = struct{}{}
		}
	}
	p.hot.Store(&m)
}

func (p *backoffPolicy) stop() {
	close(p.stopc)
	<-p.done
}

// hotKeys reports the size of the current hot set (a gauge for
// CollectObs).
func (p *backoffPolicy) hotKeys() int {
	if hot := p.hot.Load(); hot != nil {
		return len(*hot)
	}
	return 0
}
