package server

import (
	"testing"
	"time"

	"silo"
	"silo/internal/race"
	"silo/wire"
)

// bench_exec_test.go prices the server's steady-state request lifecycle
// — decode into per-connection scratch, execute on the worker's recycled
// exec state, encode into a pooled response buffer — without a socket in
// the way. The claim under test is the zero-allocation wire hot path:
// after warmup, a non-DDL GET/PUT/TXN/SCAN costs 0 allocs/op end to end
// (TestServerExecAllocs enforces it; CI's bench-exec job gates on the
// benchmark output). BENCH_EXEC.json holds the reference snapshot.

// benchExec builds a paused-executor server over an in-memory database:
// the server's own executors idle on the dispatch queue while the
// benchmark drives worker 0's exec state directly, exactly the code a
// dispatched job runs minus the channel hops.
func benchExec(tb testing.TB) (*Server, *execState, func()) {
	tb.Helper()
	db, err := silo.Open(silo.Options{Workers: 2, EpochInterval: 2 * time.Millisecond})
	if err != nil {
		tb.Fatal(err)
	}
	s := New(db, Options{})
	t := db.CreateTable("bench")
	if err := db.Run(0, func(tx *silo.Tx) error {
		for i := 0; i < 256; i++ {
			k := []byte{'k', byte(i >> 4), byte(i & 15)}
			v := make([]byte, 100)
			v[0] = byte(i)
			if err := tx.Insert(t, k, v); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		tb.Fatal(err)
	}
	st := newExecState(s, 0)
	return s, st, func() {
		s.Close()
		db.Close()
	}
}

// encodeFrame is the decode → exec → encode cycle one request pays on a
// worker; the returned length keeps the compiler honest.
func execEncode(s *Server, st *execState, req *wire.Request, rb *respBuf) int {
	resp := s.exec(0, st, req, nil)
	b, err := wire.AppendResponse(rb.b[:0], &resp)
	if err != nil {
		panic(err)
	}
	rb.b = b
	return len(b)
}

func benchLoop(b *testing.B, s *Server, st *execState, frame []byte) {
	var sc wire.DecodeScratch
	var req wire.Request
	rb := &respBuf{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wire.DecodeRequestInto(frame[4:], &req, &sc); err != nil {
			b.Fatal(err)
		}
		execEncode(s, st, &req, rb)
	}
}

func BenchmarkServerExecGet(b *testing.B) {
	s, st, stop := benchExec(b)
	defer stop()
	frame, _ := wire.AppendRequest(nil, &wire.Request{Ops: []wire.Op{
		{Kind: wire.KindGet, Table: "bench", Key: []byte{'k', 3, 7}},
	}})
	benchLoop(b, s, st, frame)
}

func BenchmarkServerExecPut(b *testing.B) {
	s, st, stop := benchExec(b)
	defer stop()
	frame, _ := wire.AppendRequest(nil, &wire.Request{Ops: []wire.Op{
		{Kind: wire.KindPut, Table: "bench", Key: []byte{'k', 3, 7}, Value: make([]byte, 100)},
	}})
	benchLoop(b, s, st, frame)
}

func BenchmarkServerExecTxn(b *testing.B) {
	s, st, stop := benchExec(b)
	defer stop()
	frame, _ := wire.AppendRequest(nil, &wire.Request{Txn: true, Ops: []wire.Op{
		{Kind: wire.KindGet, Table: "bench", Key: []byte{'k', 1, 2}},
		{Kind: wire.KindPut, Table: "bench", Key: []byte{'k', 1, 2}, Value: make([]byte, 100)},
		{Kind: wire.KindAdd, Table: "bench", Key: []byte{'k', 2, 4}, Delta: 1},
		{Kind: wire.KindGet, Table: "bench", Key: []byte{'k', 9, 9}},
	}})
	benchLoop(b, s, st, frame)
}

func BenchmarkServerExecScan(b *testing.B) {
	s, st, stop := benchExec(b)
	defer stop()
	frame, _ := wire.AppendRequest(nil, &wire.Request{Ops: []wire.Op{
		{Kind: wire.KindScan, Table: "bench", Key: []byte{'k', 2, 0}, HasHi: true, Hi: []byte{'k', 8, 0}, Limit: 64},
	}})
	benchLoop(b, s, st, frame)
}

// TestServerExecAllocs is the allocation gate behind the benchmarks:
// after one warmup pass, the full decode→exec→encode cycle of each
// steady-state shape must allocate nothing. It runs in ordinary test
// sweeps, so an allocation regression fails `go test` long before
// anyone reads a benchmark artifact.
func TestServerExecAllocs(t *testing.T) {
	if race.Enabled {
		// Race builds allocate on every write by design: in-place record
		// overwrites are off so the seqlock read protocol stays clean
		// under the detector (see internal/race). The zero-alloc claim is
		// about normal builds.
		t.Skip("race builds trade allocations for detector-clean reads")
	}
	s, st, stop := benchExec(t)
	defer stop()
	shapes := []struct {
		name string
		req  wire.Request
	}{
		{"get", wire.Request{Ops: []wire.Op{
			{Kind: wire.KindGet, Table: "bench", Key: []byte{'k', 3, 7}}}}},
		{"put", wire.Request{Ops: []wire.Op{
			{Kind: wire.KindPut, Table: "bench", Key: []byte{'k', 3, 7}, Value: make([]byte, 100)}}}},
		{"add", wire.Request{Ops: []wire.Op{
			{Kind: wire.KindAdd, Table: "bench", Key: []byte{'k', 2, 4}, Delta: 1}}}},
		{"scan", wire.Request{Ops: []wire.Op{
			{Kind: wire.KindScan, Table: "bench", Key: []byte{'k', 2, 0}, HasHi: true, Hi: []byte{'k', 8, 0}, Limit: 64}}}},
		{"txn", wire.Request{Txn: true, Ops: []wire.Op{
			{Kind: wire.KindGet, Table: "bench", Key: []byte{'k', 1, 2}},
			{Kind: wire.KindPut, Table: "bench", Key: []byte{'k', 1, 2}, Value: make([]byte, 100)},
			{Kind: wire.KindAdd, Table: "bench", Key: []byte{'k', 2, 4}, Delta: 1}}}},
	}
	var sc wire.DecodeScratch
	var req wire.Request
	rb := &respBuf{}
	for _, sh := range shapes {
		frame, err := wire.AppendRequest(nil, &sh.req)
		if err != nil {
			t.Fatal(err)
		}
		cycle := func() {
			if err := wire.DecodeRequestInto(frame[4:], &req, &sc); err != nil {
				t.Fatal(err)
			}
			execEncode(s, st, &req, rb)
		}
		for i := 0; i < 32; i++ {
			cycle() // warm scratch, arenas, and engine-side buffers
		}
		if n := testing.AllocsPerRun(200, cycle); n != 0 {
			t.Errorf("%s: %.1f allocs/op on the steady-state exec path, want 0", sh.name, n)
		}
	}
}
