package server

import (
	"bufio"
	"bytes"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"silo"
	"silo/internal/race"
	"silo/wire"
)

// recycle_test.go is the safety net under the zero-allocation hot path:
// every buffer on it — frame payloads, decode scratch, exec arenas,
// encoded response buffers — is recycled, and the only acceptable
// evidence of a lifetime bug is a byte-level diff, not a flake. The e2e
// test drives pipelined mixed traffic through a recycling server and
// through a noReuse server (every request on fresh memory) and demands
// identical response byte streams; under -race the pools additionally
// poison recycled buffers, so a stage holding a view past its release
// produces frames of 0xDB rather than plausibly stale bytes.

// startRecycleServer serves a durable single-worker group-ack database:
// one worker makes each connection's pipelined responses deterministic
// (per-connection FIFO execution), group acks exercise the releaser's
// park/release hand-off of pooled buffers.
func startRecycleServer(t *testing.T, noReuse bool) (addr string, stop func()) {
	t.Helper()
	db, err := silo.Open(silo.Options{
		Workers:       1,
		EpochInterval: 2 * time.Millisecond,
		Durability:    &silo.DurabilityOptions{Dir: t.TempDir(), Loggers: 2, Sync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable("bench")
	srv := New(db, Options{Acks: AckGroup, noReuse: noReuse})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), func() {
		srv.Close()
		db.Close()
	}
}

// recycleScript builds connection c's deterministic frame sequence:
// rounds of TXN-insert, GET, PUT, ADD, SCAN, and a mixed TXN, all within
// the connection's own key prefix so concurrent connections never
// interact. Excludes TRACE/STATS/SCHEMA, whose responses carry timings.
func recycleScript(c int) [][]byte {
	prefix := byte('A' + c)
	key := func(i int) []byte { return []byte{prefix, byte(i >> 8), byte(i)} }
	val := func(i int) []byte {
		v := make([]byte, 16) // first 8 bytes: ADD counter, starts at 0
		for j := 8; j < 16; j++ {
			v[j] = byte(i + j + c)
		}
		return v
	}
	var frames [][]byte
	add := func(req *wire.Request) {
		f, err := wire.AppendRequest(nil, req)
		if err != nil {
			panic(err)
		}
		frames = append(frames, f)
	}
	const rounds = 40
	for i := 0; i < rounds; i++ {
		k0, k1, k2 := key(3*i), key(3*i+1), key(3*i+2)
		add(&wire.Request{Txn: true, Ops: []wire.Op{
			{Kind: wire.KindInsert, Table: "bench", Key: k0, Value: val(3 * i)},
			{Kind: wire.KindInsert, Table: "bench", Key: k1, Value: val(3*i + 1)},
			{Kind: wire.KindInsert, Table: "bench", Key: k2, Value: val(3*i + 2)},
		}})
		add(&wire.Request{Ops: []wire.Op{
			{Kind: wire.KindGet, Table: "bench", Key: k1},
		}})
		add(&wire.Request{Ops: []wire.Op{
			{Kind: wire.KindPut, Table: "bench", Key: k2, Value: val(1000 + i)},
		}})
		add(&wire.Request{Ops: []wire.Op{
			{Kind: wire.KindAdd, Table: "bench", Key: k0, Delta: int64(i + 1)},
		}})
		add(&wire.Request{Ops: []wire.Op{
			{Kind: wire.KindScan, Table: "bench", Key: []byte{prefix}, HasHi: true, Hi: []byte{prefix + 1}, Limit: 8},
		}})
		add(&wire.Request{Txn: true, Ops: []wire.Op{
			{Kind: wire.KindGet, Table: "bench", Key: k0},
			{Kind: wire.KindAdd, Table: "bench", Key: k1, Delta: 7},
			{Kind: wire.KindPut, Table: "bench", Key: k0, Value: val(2000 + i)},
		}})
	}
	return frames
}

// runRecycleTraffic replays the scripted traffic over conns concurrent
// raw TCP connections, each fully pipelined (all requests written before
// all responses are read), and returns each connection's concatenated
// response payload bytes.
func runRecycleTraffic(t *testing.T, addr string, conns int) [][]byte {
	t.Helper()
	out := make([][]byte, conns)
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			frames := recycleScript(c)
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			go func() {
				for _, f := range frames {
					if _, err := conn.Write(f); err != nil {
						return
					}
				}
			}()
			br := bufio.NewReader(conn)
			var got []byte
			for i := range frames {
				p, err := wire.ReadFrameInto(br, 0, nil)
				if err != nil {
					t.Errorf("conn %d response %d: %v", c, i, err)
					return
				}
				got = append(got, p...)
			}
			out[c] = got
		}(c)
	}
	wg.Wait()
	return out
}

// TestRecyclingByteExact compares a recycling server's response bytes
// against the noReuse golden build under identical pipelined mixed
// traffic. Any pooled buffer released early, double-recycled, or aliased
// across requests diverges the streams (and under -race serves poison).
func TestRecyclingByteExact(t *testing.T) {
	const conns = 4

	goldenAddr, stopGolden := startRecycleServer(t, true)
	golden := runRecycleTraffic(t, goldenAddr, conns)
	stopGolden()

	addr, stop := startRecycleServer(t, false)
	defer stop()
	got := runRecycleTraffic(t, addr, conns)

	for c := 0; c < conns; c++ {
		if golden[c] == nil || got[c] == nil {
			t.Fatalf("conn %d: traffic did not complete", c)
		}
		if !bytes.Equal(golden[c], got[c]) {
			i := 0
			for i < len(golden[c]) && i < len(got[c]) && golden[c][i] == got[c][i] {
				i++
			}
			t.Errorf("conn %d: recycled responses diverge from golden at byte %d (golden %d bytes, got %d)",
				c, i, len(golden[c]), len(got[c]))
		}
	}
}

// TestPoolDropsOversizedBuffers pins the retention cap: a buffer that
// grew past maxPooled must not be pinned in the pool (and the job's
// decode scratch, which aliases the dropped payload, must be released
// with it).
func TestPoolDropsOversizedBuffers(t *testing.T) {
	s := &Server{}

	rb := &respBuf{b: make([]byte, maxPooled+1)}
	s.putBuf(rb)
	if rb.b != nil {
		t.Errorf("putBuf kept a %d-byte buffer past the %d cap", maxPooled+1, maxPooled)
	}

	j := s.getJob()
	j.payload = make([]byte, maxPooled+1)
	var req wire.Request
	frame, err := wire.AppendRequest(nil, &wire.Request{Ops: []wire.Op{
		{Kind: wire.KindGet, Table: "bench", Key: []byte("k")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.DecodeRequestInto(frame[4:], &req, &j.scratch); err != nil {
		t.Fatal(err)
	}
	s.putJob(j)
	if j.payload != nil {
		t.Errorf("putJob kept a %d-byte payload past the %d cap", maxPooled+1, maxPooled)
	}
	if !reflect.DeepEqual(j.scratch, wire.DecodeScratch{}) {
		t.Error("putJob dropped the payload but kept the scratch aliasing it")
	}
}

// TestRecycledBuffersPoisoned pins the race-build poisoning contract:
// returning a buffer to the pool overwrites its contents, so any stage
// still holding a view reads 0xDB bytes. Plain builds skip (poisoning
// costs a memset per recycle and is a debugging aid, not a semantic).
func TestRecycledBuffersPoisoned(t *testing.T) {
	if !race.Enabled {
		t.Skip("recycled-buffer poisoning is compiled in under -race only")
	}
	s := &Server{}

	rb := &respBuf{b: []byte("response bytes the writer flushed")}
	view := rb.b
	s.putBuf(rb)
	for i, b := range view {
		if b != poisonByte {
			t.Fatalf("putBuf left byte %d = %#x, want %#x poison", i, b, poisonByte)
		}
	}

	j := s.getJob()
	j.payload = []byte("frame payload the request aliased")
	pview := j.payload
	s.putJob(j)
	for i, b := range pview {
		if b != poisonByte {
			t.Fatalf("putJob left payload byte %d = %#x, want %#x poison", i, b, poisonByte)
		}
	}
}
