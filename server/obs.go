package server

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"

	"silo/internal/obs"
	"silo/internal/trace"
	"silo/wire"
)

// workerObs is one executor's metrics shard: per-opcode request latency
// (measured around exec, so it includes transaction retries) and the time
// each job spent queued between its connection reader and this executor.
// One shard per worker keeps the recording side uncontended. The latency
// array is sized from the real request-kind space (the historical [16]
// low-nibble indexing silently aliased any opcode ≥ 16 onto an existing
// slot); latIdx maps kinds to slots.
type workerObs struct {
	latency [int(wire.KindRequestMax) + 1]obs.Histogram // indexed by latIdx
	queue   obs.Histogram                               // ns from enqueue to execution start
}

// serverObs holds the cells shared across connections: the per-connection
// pipeline depth observed at each enqueue (how far readers run ahead of
// their writers — the wire's analogue of queue length).
type serverObs struct {
	depth obs.Histogram
}

// statsKinds are the request kinds CollectObs reports latency series for.
var statsKinds = [...]wire.Kind{
	wire.KindGet, wire.KindPut, wire.KindInsert, wire.KindDelete,
	wire.KindScan, wire.KindAdd, wire.KindTxn, wire.KindCreateIndex,
	wire.KindIScan, wire.KindSchema, wire.KindDropIndex, wire.KindStats,
	wire.KindTrace,
}

// CollectObs appends the server's own metric families to snap: connection
// and request totals, per-opcode latency histograms merged across
// executors (series with zero observations are skipped), queue time, and
// pipeline depth.
func (s *Server) CollectObs(snap *obs.Snapshot) {
	snap.Counter("silo_server_conns_total", "", "", s.conns64.Load())
	snap.Counter("silo_server_requests_total", "", "", s.requests64.Load())
	snap.Counter("silo_server_errors_total", "", "", s.errors64.Load())
	for _, k := range statsKinds {
		var h obs.HistSnapshot
		for _, o := range s.wobs {
			h.Merge(o.latency[latIdx(k)].Snapshot())
		}
		if h.Count == 0 {
			continue
		}
		snap.Histogram("silo_server_request_ns", "op", k.String(), h)
	}
	var q obs.HistSnapshot
	for _, o := range s.wobs {
		q.Merge(o.queue.Snapshot())
	}
	snap.Histogram("silo_server_queue_ns", "", "", q)
	snap.Histogram("silo_server_pipeline_depth", "", "", s.obs.depth.Snapshot())
	if s.bo != nil {
		// The backoff policy's behavior: how many conflicts it saw, how
		// many retries actually waited (zero under incidental conflicts —
		// the policy's whole point), the total wait, and how many keys the
		// flight recorder currently calls hot.
		var retries, sleeps, sleepNs uint64
		for i := range s.bo.workers {
			sh := &s.bo.workers[i]
			retries += sh.retries.Load()
			sleeps += sh.sleeps.Load()
			sleepNs += sh.sleepNs.Load()
		}
		snap.Counter("silo_server_backoff_retries_total", "", "", retries)
		snap.Counter("silo_server_backoff_sleeps_total", "", "", sleeps)
		snap.Counter("silo_server_backoff_sleep_ns_total", "", "", sleepNs)
		snap.Gauge("silo_server_backoff_hot_keys", "", "", uint64(s.bo.hotKeys()))
	}
	if s.rel != nil {
		// The release pipeline's health: how many write responses are
		// parked awaiting their epoch right now, how many have been
		// released durably, and the park-to-release wait (the group-commit
		// latency each acknowledged write actually paid).
		snap.Gauge("silo_server_parked_responses", "", "", uint64(s.rel.parked.Load()))
		snap.Counter("silo_server_released_total", "", "", s.rel.released.Load())
		snap.Histogram("silo_server_release_lag_ns", "", "", s.rel.lag.Snapshot())
	}
}

// snapshot collects the full cross-layer snapshot one STATS frame or
// admin scrape serves: every database layer plus the server itself,
// sorted into canonical order.
func (s *Server) snapshot() *obs.Snapshot {
	snap := s.db.Observe()
	s.CollectObs(snap)
	snap.Sort()
	return snap
}

// execStats serves the STATS frame.
func (s *Server) execStats() wire.Response {
	return wire.Response{Kind: wire.KindStatsR, Stats: s.snapshot()}
}

// AdminHandler returns the server's admin HTTP handler, served by
// cmd/silo-server's -admin listener (never on the data port):
//
//	/metrics      the snapshot in Prometheus text exposition format
//	/debug/vars   the snapshot as expvar-style JSON (process vars included)
//	/debug/flight the flight recorder: hottest conflicting keys and the
//	              recent event timeline (text; ?format=json for JSON)
//	/debug/slow   recent slow-op captures (requires -slow-ms)
//	/debug/pprof  the standard runtime profiles
//
// Handlers take a fresh snapshot per request; scraping is safe while the
// server executes transactions.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		vars := s.snapshot().ExpvarMap()
		// Fold in the process-wide expvar vars (memstats, cmdline, and
		// anything the embedding program published).
		expvar.Do(func(kv expvar.KeyValue) {
			vars[kv.Key] = json.RawMessage(kv.Value.String())
		})
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(vars)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		events := s.db.Flight().Dump()
		names := s.tableNamer()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			trace.WriteJSON(w, events, names)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		trace.WriteText(w, events, names)
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		ops, total := s.slow.snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			writeSlowJSON(w, ops, total, s.opts.SlowThreshold)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeSlowText(w, ops, total, s.opts.SlowThreshold)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
