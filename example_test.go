package silo_test

import (
	"fmt"
	"time"

	"silo"
)

// The basic lifecycle: open, create a table, run serializable
// transactions.
func Example() {
	db, err := silo.Open(silo.Options{Workers: 1})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	tbl := db.CreateTable("greetings")
	err = db.Run(0, func(tx *silo.Tx) error {
		return tx.Insert(tbl, []byte("hello"), []byte("world"))
	})
	if err != nil {
		panic(err)
	}

	db.Run(0, func(tx *silo.Tx) error {
		v, err := tx.Get(tbl, []byte("hello"))
		if err != nil {
			return err
		}
		fmt.Printf("hello %s\n", v)
		return nil
	})
	// Output: hello world
}

// Read-modify-write with automatic conflict retry: the idiomatic way to
// run one-shot requests.
func ExampleDB_Run() {
	db, _ := silo.Open(silo.Options{Workers: 1})
	defer db.Close()
	counters := db.CreateTable("counters")
	db.Run(0, func(tx *silo.Tx) error {
		return tx.Insert(counters, []byte("n"), []byte{0})
	})

	for i := 0; i < 3; i++ {
		db.Run(0, func(tx *silo.Tx) error {
			v, err := tx.Get(counters, []byte("n"))
			if err != nil {
				return err
			}
			v[0]++
			return tx.Put(counters, []byte("n"), v)
		})
	}

	db.Run(0, func(tx *silo.Tx) error {
		v, _ := tx.Get(counters, []byte("n"))
		fmt.Println("n =", v[0])
		return nil
	})
	// Output: n = 3
}

// Range scans visit keys in order and are phantom-protected: if another
// transaction inserts into the scanned range before this one commits, this
// one aborts and retries.
func ExampleTx_Scan() {
	db, _ := silo.Open(silo.Options{Workers: 1})
	defer db.Close()
	tbl := db.CreateTable("t")
	db.Run(0, func(tx *silo.Tx) error {
		for _, k := range []string{"ant", "bee", "cat", "dog"} {
			if err := tx.Insert(tbl, []byte(k), []byte{1}); err != nil {
				return err
			}
		}
		return nil
	})

	db.Run(0, func(tx *silo.Tx) error {
		return tx.Scan(tbl, []byte("b"), []byte("d"), func(k, v []byte) bool {
			fmt.Println(string(k))
			return true
		})
	})
	// Output:
	// bee
	// cat
}

// Snapshot transactions serve large read-only work from a recent consistent
// snapshot: they never abort and never block writers.
func ExampleDB_RunSnapshot() {
	db, _ := silo.Open(silo.Options{
		Workers:       1,
		EpochInterval: time.Millisecond,
		SnapshotK:     2,
	})
	defer db.Close()
	tbl := db.CreateTable("t")
	db.Run(0, func(tx *silo.Tx) error {
		return tx.Insert(tbl, []byte("k"), []byte("v"))
	})
	time.Sleep(50 * time.Millisecond) // let a snapshot boundary pass

	db.RunSnapshot(0, func(stx *silo.SnapTx) error {
		v, err := stx.Get(tbl, []byte("k"))
		if err != nil {
			return err
		}
		fmt.Printf("snapshot sees %s\n", v)
		return nil
	})
	// Output: snapshot sees v
}
