// Command silo-server serves a silo database over TCP, speaking the binary
// protocol of package wire. Each request runs as a one-shot serializable
// transaction on one of the database's workers; conflicts retry server-side.
//
// Usage:
//
//	silo-server -addr :4555 -workers 8
//	silo-server -addr :4555 -tables accounts,audit -logdir /var/lib/silo -sync
//	silo-server -addr :4555 -tables accounts -logdir /var/lib/silo \
//	    -checkpoint-interval 1m -segment-bytes 67108864
//
// Without -logdir the server runs as MemSilo (no persistence). With it,
// committed transactions are redo-logged and group-committed, and every
// DDL action — table creation, CREATE_INDEX — is recorded in the durable
// schema catalog, so a later run recovers with -recover alone: the full
// schema (tables, indexes, covering include lists, key-spec transforms)
// is reconstructed from disk and printed, no re-declaration flags needed.
// -tables remains as a convenience for creating fresh tables at startup
// (it runs after recovery and is idempotent for recovered names).
// -checkpoint-interval additionally runs the background checkpoint
// daemon: partitioned checkpoints off snapshot epochs while the server
// keeps serving, a forced log rotation after each checkpoint, and
// automatic truncation of covered segments (recovery then replays only
// the log suffix beyond the newest checkpoint, in parallel).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"silo"
	"silo/internal/trace"
	"silo/internal/wal"
	"silo/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":4555", "TCP listen address")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker contexts (one per core)")
		epoch     = flag.Duration("epoch", 40*time.Millisecond, "epoch interval (paper: 40ms)")
		tables    = flag.String("tables", "", "comma-separated tables to create at startup")
		logDir    = flag.String("logdir", "", "durability directory (empty = no persistence)")
		loggers   = flag.Int("loggers", 2, "logger threads when -logdir is set")
		doSync    = flag.Bool("sync", false, "fsync log writes")
		doRecov   = flag.Bool("recover", false, "recover from -logdir before serving")
		ckptEvery = flag.Duration("checkpoint-interval", 0, "background checkpoint daemon period (0 = off; requires -logdir)")
		ckptParts = flag.Int("checkpoint-parts", 4, "partition writers per checkpoint")
		segBytes  = flag.Int64("segment-bytes", 64<<20, "log segment rotation size when the daemon runs (0 = no rotation)")
		recovWkrs = flag.Int("recovery-workers", 0, "parallel recovery workers (0 = GOMAXPROCS)")
		pipeline  = flag.Int("pipeline", 128, "per-connection in-flight request cap")
		noCreate  = flag.Bool("no-auto-create", false, "reject unknown tables instead of creating them")
		stats     = flag.Duration("stats", 0, "print stats every interval (0 = off)")
		admin     = flag.String("admin", "", "admin HTTP listen address serving /metrics, /debug/vars, /debug/flight, /debug/slow and /debug/pprof (empty = off)")
		slowMs    = flag.Int("slow-ms", 0, "force-trace every request and capture ops slower than this many milliseconds at /debug/slow (0 = off)")
		ackMode   = flag.String("ack-mode", "auto", "when write responses are released to clients: auto (group under -sync, immediate otherwise), group (park each response until its commit epoch is durable — an OK frame then guarantees the write survives a crash), immediate (ack at in-memory commit; the pre-pipeline behavior, opt-out for -sync), request (block the executing worker per write; the naive baseline group release is benchmarked against)")
		backoff   = flag.Bool("backoff", false, "contention-aware retry backoff: retries against keys the flight recorder calls hot wait exponentially (with jitter) instead of spinning")
	)
	flag.Parse()

	opts := silo.Options{Workers: *workers, EpochInterval: *epoch}
	if *logDir != "" {
		opts.Durability = &silo.DurabilityOptions{
			Dir: *logDir, Loggers: *loggers, Sync: *doSync,
			CheckpointInterval:   *ckptEvery,
			CheckpointPartitions: *ckptParts,
			SegmentBytes:         *segBytes,
			RecoveryWorkers:      *recovWkrs,
		}
	} else if *ckptEvery > 0 {
		fatal(fmt.Errorf("-checkpoint-interval requires -logdir"))
	}
	db, err := silo.Open(opts)
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	if *ckptEvery > 0 && !*doRecov && dirHasLogs(*logDir) {
		// The daemon only starts after recovery on an existing log
		// directory (an early checkpoint must never truncate unreplayed
		// data); without -recover it would silently never run.
		fatal(fmt.Errorf("-checkpoint-interval over an existing log directory requires -recover"))
	}
	if *doRecov {
		if *logDir == "" {
			fatal(fmt.Errorf("-recover requires -logdir"))
		}
		// Recovery is self-describing: the schema catalog reconstructs
		// every table and index from disk; nothing is declared beforehand.
		res, err := db.Recover()
		if err != nil {
			fatal(fmt.Errorf("recover: %w", err))
		}
		res.WriteReport(os.Stdout, 0)
		printSchema(db)
	}
	// Fresh tables (idempotent for names recovery already reconstructed);
	// runs after recovery so creations append to the recovered catalog.
	for _, name := range strings.Split(*tables, ",") {
		if name = strings.TrimSpace(name); name != "" {
			db.CreateTable(name)
		}
	}

	// -sync promises clients durability, so it implies durable acks: an
	// OK frame is withheld until the write's epoch is durable (group
	// release keeps the workers pipelined). -ack-mode immediate opts back
	// into the historical ack-at-memory-commit behavior.
	var acks server.AckMode
	switch *ackMode {
	case "auto":
		if *doSync && *logDir != "" {
			acks = server.AckGroup
		}
	case "group":
		acks = server.AckGroup
	case "immediate":
		acks = server.AckImmediate
	case "request":
		acks = server.AckPerRequest
	default:
		fatal(fmt.Errorf("unknown -ack-mode %q (auto, group, immediate, request)", *ackMode))
	}
	if acks != server.AckImmediate && *logDir == "" {
		fatal(fmt.Errorf("-ack-mode %s requires -logdir (durable acks need a log)", acks))
	}

	srv := server.New(db, server.Options{
		Addr:              *addr,
		Pipeline:          *pipeline,
		DisableAutoCreate: *noCreate || *logDir != "",
		SlowThreshold:     time.Duration(*slowMs) * time.Millisecond,
		Acks:              acks,
		Backoff:           *backoff,
	})

	// The flight recorder's last seconds are the forensic record of how
	// the process died: dump it on the way out of a panic, and on
	// operator interrupt.
	defer func() {
		if r := recover(); r != nil {
			dumpFlight(db, "panic")
			panic(r)
		}
	}()

	var adminSrv *http.Server
	if *admin != "" {
		adminSrv = &http.Server{Addr: *admin, Handler: srv.AdminHandler()}
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "silo-server: admin:", err)
			}
		}()
		fmt.Printf("admin endpoint on %s (/metrics, /debug/vars, /debug/flight, /debug/slow, /debug/pprof)\n", *admin)
	}

	// The stats printer uses a stoppable Ticker tied to statsDone (a bare
	// time.Tick would leak the goroutine — and keep printing — past
	// srv.Close on shutdown).
	statsDone := make(chan struct{})
	if *stats > 0 {
		tick := time.NewTicker(*stats)
		go func() {
			defer tick.Stop()
			for {
				select {
				case <-statsDone:
					return
				case <-tick.C:
					fmt.Println(statsLine(db, srv))
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "shutting down")
		dumpFlight(db, "shutdown")
		srv.Close()
	}()

	fmt.Printf("silo-server listening on %s (%d workers, durability=%v, acks=%s)\n",
		*addr, *workers, *logDir != "", srv.AckMode())
	err = srv.ListenAndServe()
	close(statsDone)
	if adminSrv != nil {
		adminSrv.Close()
	}
	if err != nil {
		fatal(err)
	}
	ss := srv.Stats()
	fmt.Printf("served %d requests on %d connections (%d errors)\n",
		ss.Requests, ss.Conns, ss.Errors)
}

// dumpFlight writes the flight recorder's merged event timeline — with
// the hottest-conflicting-keys summary — to stderr; why labels the
// occasion (shutdown, panic).
func dumpFlight(db *silo.DB, why string) {
	events := db.Flight().Dump()
	if len(events) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "--- flight recorder dump (%s) ---\n", why)
	trace.WriteText(os.Stderr, events, flightNamer(db))
}

// flightNamer resolves table ids against the live schema for flight
// rendering.
func flightNamer(db *silo.DB) trace.TableNamer {
	m := map[uint32]string{}
	for _, t := range db.Tables() {
		m[t.ID] = t.Name
	}
	return func(id uint32) string { return m[id] }
}

// statsLine renders one periodic stats line from the same cross-layer
// snapshot the STATS frame and the admin endpoint serve.
func statsLine(db *silo.DB, srv *server.Server) string {
	snap := db.Observe()
	srv.CollectObs(snap)
	var aborts uint64
	for _, reason := range []string{"read_validation", "node_validation", "hook_poisoned", "explicit"} {
		aborts += snap.Value("silo_core_aborts_total", reason)
	}
	line := fmt.Sprintf("conns=%d requests=%d errors=%d commits=%d aborts=%d",
		snap.Value("silo_server_conns_total", ""),
		snap.Value("silo_server_requests_total", ""),
		snap.Value("silo_server_errors_total", ""),
		snap.Value("silo_core_commits_total", ""), aborts)
	if s := snap.Get("silo_wal_durable_epoch", ""); s != nil {
		line += fmt.Sprintf(" durable_epoch=%d lag=%d",
			s.Value, snap.Value("silo_wal_durable_lag_epochs", ""))
		if h := snap.Get("silo_wal_fsync_ns", ""); h != nil && h.Hist.Count > 0 {
			line += fmt.Sprintf(" fsync_p99=%v", time.Duration(h.Hist.Quantile(0.99)))
		}
	}
	// Group-release pipeline health (present only under durable group
	// acks): responses parked awaiting their epoch and the wait released
	// ones paid.
	if s := snap.Get("silo_server_parked_responses", ""); s != nil {
		line += fmt.Sprintf(" parked=%d", s.Value)
		if h := snap.Get("silo_server_release_lag_ns", ""); h != nil && h.Hist.Count > 0 {
			line += fmt.Sprintf(" release_p99=%v", time.Duration(h.Hist.Quantile(0.99)))
		}
	}
	if _, ok := db.CheckpointDaemon(); ok {
		line += fmt.Sprintf(" checkpoints=%d last_ce=%d truncated=%d",
			snap.Value("silo_ckpt_completed_total", ""),
			snap.Value("silo_ckpt_last_epoch", ""),
			snap.Value("silo_ckpt_truncated_segments_total", ""))
	}
	// The flight recorder's abort forensics, folded down to the three
	// hottest conflict sites still in the ring.
	if hot := trace.TopConflicts(db.Flight().Dump(), 3); len(hot) > 0 {
		namer := flightNamer(db)
		line += " hot="
		for i := range hot {
			if i > 0 {
				line += ","
			}
			name := namer(hot[i].Table)
			if name == "" {
				name = fmt.Sprintf("t%d", hot[i].Table)
			}
			line += fmt.Sprintf("%s:%q:%d", name, hot[i].PrefixString(), hot[i].Count)
		}
	}
	return line
}

// printSchema prints the recovered schema: tables in id order, then index
// declarations.
func printSchema(db *silo.DB) {
	fmt.Println("recovered schema:")
	for _, t := range db.Tables() {
		if t.Name == silo.CatalogTableName {
			continue
		}
		kind := "table"
		if db.Index(t.Name) != nil {
			kind = "index"
		}
		fmt.Printf("  %-5s id=%-3d %-24s %d keys\n", kind, t.ID, t.Name, t.Tree.Len())
	}
	for _, ix := range db.Indexes() {
		attrs := ""
		if ix.Unique {
			attrs += " unique"
		}
		if ix.Covering() {
			attrs += fmt.Sprintf(" covering(%d segs)", len(ix.Include))
		}
		if ix.Spec == nil {
			attrs += " opaque-keyfunc"
		} else {
			attrs += fmt.Sprintf(" spec(%d segs)", len(ix.Spec))
		}
		fmt.Printf("  index %s on %s:%s\n", ix.Name, ix.On.Name, attrs)
	}
}

// dirHasLogs reports whether dir holds non-empty log segments from a
// previous run.
func dirHasLogs(dir string) bool {
	infos, err := wal.ListLogFiles(dir)
	if err != nil {
		return false
	}
	for _, fi := range infos {
		if st, err := os.Stat(fi.Path); err == nil && st.Size() > 0 {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silo-server:", err)
	os.Exit(1)
}
