// Command silo-server serves a silo database over TCP, speaking the binary
// protocol of package wire. Each request runs as a one-shot serializable
// transaction on one of the database's workers; conflicts retry server-side.
//
// Usage:
//
//	silo-server -addr :4555 -workers 8
//	silo-server -addr :4555 -tables accounts,audit -logdir /var/lib/silo -sync
//
// Without -logdir the server runs as MemSilo (no persistence). With it,
// committed transactions are redo-logged and group-committed; pass the same
// -tables list (order matters: table IDs are part of the log format) to a
// later run to recover with -recover.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"silo"
	"silo/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":4555", "TCP listen address")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker contexts (one per core)")
		epoch    = flag.Duration("epoch", 40*time.Millisecond, "epoch interval (paper: 40ms)")
		tables   = flag.String("tables", "", "comma-separated tables to create at startup")
		logDir   = flag.String("logdir", "", "durability directory (empty = no persistence)")
		loggers  = flag.Int("loggers", 2, "logger threads when -logdir is set")
		doSync   = flag.Bool("sync", false, "fsync log writes")
		doRecov  = flag.Bool("recover", false, "recover from -logdir before serving")
		pipeline = flag.Int("pipeline", 128, "per-connection in-flight request cap")
		noCreate = flag.Bool("no-auto-create", false, "reject unknown tables instead of creating them")
		stats    = flag.Duration("stats", 0, "print stats every interval (0 = off)")
	)
	flag.Parse()

	opts := silo.Options{Workers: *workers, EpochInterval: *epoch}
	if *logDir != "" {
		opts.Durability = &silo.DurabilityOptions{Dir: *logDir, Loggers: *loggers, Sync: *doSync}
	}
	db, err := silo.Open(opts)
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	for _, name := range strings.Split(*tables, ",") {
		if name = strings.TrimSpace(name); name != "" {
			db.CreateTable(name)
		}
	}
	if *doRecov {
		if *logDir == "" {
			fatal(fmt.Errorf("-recover requires -logdir"))
		}
		res, err := db.Recover()
		if err != nil {
			fatal(fmt.Errorf("recover: %w", err))
		}
		fmt.Printf("recovered %d transactions to epoch %d\n", res.TxnsApplied, res.DurableEpoch)
	}

	srv := server.New(db, server.Options{
		Addr:              *addr,
		Pipeline:          *pipeline,
		DisableAutoCreate: *noCreate || *logDir != "",
	})

	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				ss, es := srv.Stats(), db.Stats()
				fmt.Printf("conns=%d requests=%d errors=%d commits=%d aborts=%d\n",
					ss.Conns, ss.Requests, ss.Errors, es.Commits, es.Aborts)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "shutting down")
		srv.Close()
	}()

	fmt.Printf("silo-server listening on %s (%d workers, durability=%v)\n",
		*addr, *workers, *logDir != "")
	if err := srv.ListenAndServe(); err != nil {
		fatal(err)
	}
	ss := srv.Stats()
	fmt.Printf("served %d requests on %d connections (%d errors)\n",
		ss.Requests, ss.Conns, ss.Errors)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silo-server:", err)
	os.Exit(1)
}
