// Command silo-server serves a silo database over TCP, speaking the binary
// protocol of package wire. Each request runs as a one-shot serializable
// transaction on one of the database's workers; conflicts retry server-side.
//
// Usage:
//
//	silo-server -addr :4555 -workers 8
//	silo-server -addr :4555 -tables accounts,audit -logdir /var/lib/silo -sync
//	silo-server -addr :4555 -tables accounts -logdir /var/lib/silo \
//	    -checkpoint-interval 1m -segment-bytes 67108864
//
// Without -logdir the server runs as MemSilo (no persistence). With it,
// committed transactions are redo-logged and group-committed; pass the same
// -tables list (order matters: table IDs are part of the log format) to a
// later run to recover with -recover. -checkpoint-interval additionally
// runs the background checkpoint daemon: partitioned checkpoints off
// snapshot epochs while the server keeps serving, with automatic log
// truncation (recovery then replays only the log suffix beyond the newest
// checkpoint, in parallel).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"silo"
	"silo/internal/wal"
	"silo/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":4555", "TCP listen address")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker contexts (one per core)")
		epoch     = flag.Duration("epoch", 40*time.Millisecond, "epoch interval (paper: 40ms)")
		tables    = flag.String("tables", "", "comma-separated tables to create at startup")
		logDir    = flag.String("logdir", "", "durability directory (empty = no persistence)")
		loggers   = flag.Int("loggers", 2, "logger threads when -logdir is set")
		doSync    = flag.Bool("sync", false, "fsync log writes")
		doRecov   = flag.Bool("recover", false, "recover from -logdir before serving")
		ckptEvery = flag.Duration("checkpoint-interval", 0, "background checkpoint daemon period (0 = off; requires -logdir)")
		ckptParts = flag.Int("checkpoint-parts", 4, "partition writers per checkpoint")
		segBytes  = flag.Int64("segment-bytes", 64<<20, "log segment rotation size when the daemon runs (0 = no rotation)")
		recovWkrs = flag.Int("recovery-workers", 0, "parallel recovery workers (0 = GOMAXPROCS)")
		pipeline  = flag.Int("pipeline", 128, "per-connection in-flight request cap")
		noCreate  = flag.Bool("no-auto-create", false, "reject unknown tables instead of creating them")
		stats     = flag.Duration("stats", 0, "print stats every interval (0 = off)")
	)
	flag.Parse()

	opts := silo.Options{Workers: *workers, EpochInterval: *epoch}
	if *logDir != "" {
		opts.Durability = &silo.DurabilityOptions{
			Dir: *logDir, Loggers: *loggers, Sync: *doSync,
			CheckpointInterval:   *ckptEvery,
			CheckpointPartitions: *ckptParts,
			SegmentBytes:         *segBytes,
			RecoveryWorkers:      *recovWkrs,
		}
	} else if *ckptEvery > 0 {
		fatal(fmt.Errorf("-checkpoint-interval requires -logdir"))
	}
	db, err := silo.Open(opts)
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	for _, name := range strings.Split(*tables, ",") {
		if name = strings.TrimSpace(name); name != "" {
			db.CreateTable(name)
		}
	}
	if *ckptEvery > 0 && !*doRecov && dirHasLogs(*logDir) {
		// The daemon only starts after recovery on an existing log
		// directory (an early checkpoint must never truncate unreplayed
		// data); without -recover it would silently never run.
		fatal(fmt.Errorf("-checkpoint-interval over an existing log directory requires -recover"))
	}
	if *doRecov {
		if *logDir == "" {
			fatal(fmt.Errorf("-recover requires -logdir"))
		}
		res, err := db.Recover()
		if err != nil {
			fatal(fmt.Errorf("recover: %w", err))
		}
		fmt.Printf("recovered %d transactions to epoch %d (%d workers: checkpoint CE=%d in %v, log %v)\n",
			res.TxnsApplied, res.DurableEpoch, res.Workers,
			res.CheckpointEpoch, res.CheckpointLoad.Round(time.Millisecond),
			(res.LogRead + res.LogApply).Round(time.Millisecond))
	}

	srv := server.New(db, server.Options{
		Addr:              *addr,
		Pipeline:          *pipeline,
		DisableAutoCreate: *noCreate || *logDir != "",
	})

	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				ss, es := srv.Stats(), db.Stats()
				line := fmt.Sprintf("conns=%d requests=%d errors=%d commits=%d aborts=%d",
					ss.Conns, ss.Requests, ss.Errors, es.Commits, es.Aborts)
				if ds, ok := db.CheckpointDaemon(); ok {
					line += fmt.Sprintf(" checkpoints=%d last_ce=%d truncated=%d",
						ds.Checkpoints, ds.LastEpoch, ds.TruncatedSegments)
				}
				fmt.Println(line)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "shutting down")
		srv.Close()
	}()

	fmt.Printf("silo-server listening on %s (%d workers, durability=%v)\n",
		*addr, *workers, *logDir != "")
	if err := srv.ListenAndServe(); err != nil {
		fatal(err)
	}
	ss := srv.Stats()
	fmt.Printf("served %d requests on %d connections (%d errors)\n",
		ss.Requests, ss.Conns, ss.Errors)
}

// dirHasLogs reports whether dir holds non-empty log segments from a
// previous run.
func dirHasLogs(dir string) bool {
	infos, err := wal.ListLogFiles(dir)
	if err != nil {
		return false
	}
	for _, fi := range infos {
		if st, err := os.Stat(fi.Path); err == nil && st.Size() > 0 {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silo-server:", err)
	os.Exit(1)
}
