// Command silo-recover inspects, replays, and maintains Silo durability
// directories.
//
//	silo-recover -dir /path/to/logs            # summarize segments and D
//	silo-recover -dir /path/to/logs -verbose   # dump every transaction
//	silo-recover -dir /path/to/logs -replay    # parallel checkpoint+log
//	                                           # recovery with a report
//	silo-recover -dir /path/to/logs -replay -parallel 1   # sequential
//
// Replay restores from the newest complete checkpoint plus the log suffix
// and prints a recovery report — txns/s and MB/s replayed, checkpoint load
// time versus log replay time — so BENCH runs can track recovery speed
// over time, followed by the recovered schema. Directories written by
// silo.DB are self-describing: the durable schema catalog reconstructs
// every table and index (ids, uniqueness, key-spec transforms, covering
// include lists), so no schema flags exist. Replay is read-only: an index
// creation the crash interrupted is reported as pending, not completed
// (a real Recover through silo.Open rolls it forward).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"silo/internal/catalog"
	"silo/internal/core"
	"silo/internal/index"
	"silo/internal/recovery"
	"silo/internal/tid"
	"silo/internal/wal"
)

func main() {
	var (
		dir        = flag.String("dir", "", "log directory (required)")
		verbose    = flag.Bool("verbose", false, "dump every logged transaction")
		replay     = flag.Bool("replay", false, "replay checkpoint+log into a fresh in-memory store")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "recovery workers for -replay (1 = single goroutine)")
		compressed = flag.Bool("compressed", false, "logs were written with compression")
		truncate   = flag.Uint64("truncate", 0, "delete log files fully covered by a checkpoint at this epoch")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: silo-recover -dir <logdir> [-verbose] [-replay] [-parallel N]")
		os.Exit(2)
	}

	infos, err := wal.ListLogFiles(*dir)
	if err != nil {
		fatal(err)
	}
	if len(infos) == 0 {
		fatal(fmt.Errorf("no log files in %s", *dir))
	}
	files := make([][]wal.TxnRecord, len(infos))
	durables := make([]uint64, len(infos))
	var totalBytes int64
	totalTxns, totalEntries := 0, 0
	for i, fi := range infos {
		var size int64
		files[i], durables[i], size, err = wal.ParseLogFilePath(fi.Path, *compressed)
		if err != nil {
			fatal(err)
		}
		totalBytes += size
		var maxTID uint64
		for _, t := range files[i] {
			totalTxns++
			totalEntries += len(t.Entries)
			if t.TID > maxTID {
				maxTID = t.TID
			}
		}
		fmt.Printf("%s: logger %d seq %d: %d txns, %.1f KB, last durable epoch d=%d, max TID epoch=%d\n",
			fi.Path, fi.Logger, fi.Seq, len(files[i]), float64(size)/1024, durables[i], tid.Word(maxTID).Epoch())
	}
	d := wal.DurableBound(infos, durables)
	fmt.Printf("global durable epoch D=%d; %d txns, %d record writes, %.1f MB in %d segments\n",
		d, totalTxns, totalEntries, float64(totalBytes)/(1<<20), len(infos))

	if *verbose {
		for i, f := range files {
			for _, t := range f {
				w := tid.Word(t.TID)
				status := "replayable"
				if w.Epoch() > d {
					status = "beyond D (discarded on recovery)"
				}
				fmt.Printf("%s tid(e=%d,seq=%d) %d writes [%s]\n", infos[i].Path, w.Epoch(), w.Seq(), len(t.Entries), status)
				for _, e := range t.Entries {
					op := "put"
					if e.Delete {
						op = "del"
					}
					fmt.Printf("    %s table=%d key=%x vlen=%d\n", op, e.Table, e.Key, len(e.Value))
				}
			}
		}
	}

	if *replay {
		s := core.NewStore(core.DefaultOptions(1))
		defer s.Close()
		reg := index.NewRegistry()
		cat := catalog.New(s, reg)
		start := time.Now()
		res, err := recovery.Recover(s, *dir, recovery.Options{
			Workers:    *parallel,
			Compressed: *compressed,
			Schema:     cat,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		total := time.Since(start)
		res.WriteReport(os.Stdout, total)
		fmt.Printf("recovered schema:\n")
		for _, tbl := range s.Tables() {
			kind := "table"
			switch {
			case tbl.Name == catalog.TableName:
				kind = "catalog"
			case reg.Get(tbl.Name) != nil:
				kind = "index"
			}
			fmt.Printf("  %-7s id=%-3d %-24s %d keys\n", kind, tbl.ID, tbl.Name, tbl.Tree.Len())
		}
		for _, ix := range reg.All() {
			attrs := ""
			if ix.Unique {
				attrs += " unique"
			}
			if ix.Covering() {
				attrs += fmt.Sprintf(" covering(%d segs)", len(ix.Include))
			}
			if ix.Spec != nil {
				attrs += fmt.Sprintf(" spec(%d segs)", len(ix.Spec))
			}
			fmt.Printf("  index %s on %s:%s\n", ix.Name, ix.On.Name, attrs)
		}
		for _, name := range cat.Pending() {
			fmt.Printf("  index %s: creation interrupted mid-backfill; Recover through silo.Open will finish or roll it back\n", name)
		}
	}

	if *truncate > 0 {
		removed, err := wal.TruncateLogs(*dir, *truncate, *compressed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("truncated %d log files covered by checkpoint epoch %d: %v\n",
			len(removed), *truncate, removed)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silo-recover:", err)
	os.Exit(1)
}
