// Command silo-recover inspects and replays Silo log directories.
//
//	silo-recover -dir /path/to/logs            # summarize frames and D
//	silo-recover -dir /path/to/logs -verbose   # dump every transaction
//	silo-recover -dir /path/to/logs -replay    # replay into a fresh store
//	                                           # and report recovered row counts
//
// Replay creates the TPC-C schema by default (matching examples/tpcc and
// silo-bench persistence runs); -tables overrides with a comma-separated
// table list in creation order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"silo/internal/core"
	"silo/internal/tid"
	"silo/internal/wal"
	"silo/internal/workload/tpcc"
)

func main() {
	var (
		dir        = flag.String("dir", "", "log directory (required)")
		verbose    = flag.Bool("verbose", false, "dump every logged transaction")
		replay     = flag.Bool("replay", false, "replay the log into a fresh in-memory store")
		tables     = flag.String("tables", "", "comma-separated table names in creation order (default: TPC-C schema)")
		compressed = flag.Bool("compressed", false, "logs were written with compression")
		useCkpt    = flag.Bool("checkpoint", false, "with -replay: restore from the newest checkpoint plus the log suffix")
		truncate   = flag.Uint64("truncate", 0, "delete log files fully covered by a checkpoint at this epoch")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: silo-recover -dir <logdir> [-verbose] [-replay]")
		os.Exit(2)
	}

	var files [][]wal.TxnRecord
	var durables []uint64
	var err error
	if *compressed {
		files, durables, err = wal.ReadLogDirCompressed(*dir)
	} else {
		files, durables, err = wal.ReadLogDir(*dir)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	d := ^uint64(0)
	totalTxns, totalEntries := 0, 0
	for i, f := range files {
		var bytes int
		var maxTID uint64
		for _, t := range f {
			totalTxns++
			totalEntries += len(t.Entries)
			if t.TID > maxTID {
				maxTID = t.TID
			}
		}
		_ = bytes
		fmt.Printf("log.%d: %d txns, last durable epoch d=%d, max TID epoch=%d\n",
			i, len(f), durables[i], tid.Word(maxTID).Epoch())
		if durables[i] < d {
			d = durables[i]
		}
	}
	if d == ^uint64(0) {
		d = 0
	}
	fmt.Printf("global durable epoch D=%d; %d txns, %d record writes logged\n", d, totalTxns, totalEntries)

	if *verbose {
		for i, f := range files {
			for _, t := range f {
				w := tid.Word(t.TID)
				status := "replayable"
				if w.Epoch() > d {
					status = "beyond D (discarded on recovery)"
				}
				fmt.Printf("log.%d tid(e=%d,seq=%d) %d writes [%s]\n", i, w.Epoch(), w.Seq(), len(t.Entries), status)
				for _, e := range t.Entries {
					op := "put"
					if e.Delete {
						op = "del"
					}
					fmt.Printf("    %s table=%d key=%x vlen=%d\n", op, e.Table, e.Key, len(e.Value))
				}
			}
		}
	}

	if *replay {
		s := core.NewStore(core.DefaultOptions(1))
		defer s.Close()
		if *tables == "" {
			tpcc.CreateTables(s)
		} else {
			for _, name := range strings.Split(*tables, ",") {
				s.CreateTable(strings.TrimSpace(name))
			}
		}
		var res wal.RecoveryResult
		var err error
		if *useCkpt {
			var ce uint64
			res, ce, err = wal.RecoverWithCheckpoint(s, *dir, *dir, *compressed)
			if err == nil {
				fmt.Printf("checkpoint epoch CE=%d\n", ce)
			}
		} else {
			res, err = wal.Recover(s, *dir, *compressed)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("replayed: D=%d txns applied=%d skipped(beyond D)=%d entries=%d\n",
			res.DurableEpoch, res.TxnsApplied, res.TxnsSkipped, res.EntriesApplied)
		for _, tbl := range s.Tables() {
			fmt.Printf("  table %-20s %d keys\n", tbl.Name, tbl.Tree.Len())
		}
	}

	if *truncate > 0 {
		removed, err := wal.TruncateLogs(*dir, *truncate, *compressed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("truncated %d log files covered by checkpoint epoch %d: %v\n",
			len(removed), *truncate, removed)
	}
}
