// Command silo-loadgen drives a silo database with the paper's YCSB-like
// mix (§5.2: uniform keys, 100-byte records, 80% reads / 20%
// read-modify-writes) and reports closed-loop throughput and latency
// percentiles. The same op generation (internal/workload/ycsb) backs the
// embedded benchmarks in silo-bench, so embedded and over-the-wire numbers
// are directly comparable — and -embedded runs the identical mix against
// an in-process database with the same report.
//
// A YCSB-E-style scan-heavy mode mixes in range scans (-scan-frac,
// -scan-len); with -index the scans go through a secondary index on the
// record's counter field instead of the primary key space, exercising
// CREATE_INDEX/ISCAN over the wire and the index subsystem embedded
// (-snapshot-scans reads the index at a consistent snapshot).
//
// Usage:
//
//	silo-server -addr :4555 &
//	silo-loadgen -addr localhost:4555 -load -keys 100000
//	silo-loadgen -addr localhost:4555 -clients 16 -conns 4 -duration 10s
//	silo-loadgen -addr localhost:4555 -scan-frac 0.95 -scan-len 100 -index
//	silo-loadgen -embedded -clients 8 -scan-frac 0.5
//
// Reads map to GET, read-modify-writes to ADD (a server-side serializable
// increment in one round trip); -txn batches each client's point ops into
// multi-op one-shot transaction frames instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"silo"
	"silo/client"
	"silo/internal/workload/ycsb"
	"silo/wire"
)

// indexName is the secondary index used by -index: the big-endian counter
// field occupying the first 8 bytes of every record.
const indexName = "usertable_by_ctr"

func indexSegs() []wire.IndexSeg {
	return []wire.IndexSeg{{FromValue: true, Off: 0, Len: 8}}
}

func main() {
	var (
		addr      = flag.String("addr", "localhost:4555", "server address")
		clients   = flag.Int("clients", 8, "closed-loop client goroutines")
		conns     = flag.Int("conns", 2, "pooled connections per client")
		duration  = flag.Duration("duration", 5*time.Second, "measured run length")
		keys      = flag.Int("keys", 100000, "key-space size (paper: 160M)")
		valSize   = flag.Int("valuesize", 100, "record size in bytes (paper: 100)")
		readPct   = flag.Int("readpct", 80, "percentage of point ops that are reads (paper: 80)")
		scanFrac  = flag.Float64("scan-frac", 0, "fraction (0..1) of ops that are scans (YCSB-E style)")
		scanLen   = flag.Int("scan-len", 100, "keys per scan")
		useIndex  = flag.Bool("index", false, "route scans through a secondary index on the counter field")
		snapScan  = flag.Bool("snapshot-scans", false, "run index scans against a consistent snapshot")
		table     = flag.String("table", ycsb.TableName, "table name")
		load      = flag.Bool("load", false, "preload the key space before the run")
		txnOps    = flag.Int("txn", 0, "point ops per multi-op TXN frame (0 = single-op requests)")
		embedded  = flag.Bool("embedded", false, "run against an in-process database instead of a server")
		logDir    = flag.String("logdir", "", "embedded durability directory (default: a temp dir when -checkpoint-interval is set)")
		ckptEvery = flag.Duration("checkpoint-interval", 0, "run the checkpoint daemon under load (embedded; 0 = off)")
		seed      = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	cfg := ycsb.Config{
		Keys: *keys, ValueSize: *valSize, ReadPct: *readPct,
		ScanFrac: *scanFrac, ScanLen: *scanLen,
	}
	if *snapScan && !*useIndex {
		fatal(fmt.Errorf("-snapshot-scans requires -index"))
	}
	if (*ckptEvery > 0 || *logDir != "") && !*embedded {
		fatal(fmt.Errorf("-checkpoint-interval and -logdir drive an in-process database: add -embedded (use silo-server's flags for a remote daemon)"))
	}

	var db *silo.DB
	var run func(c int, gen *ycsb.Generator, stop *atomic.Bool) ([]time.Duration, uint64, error)
	if *embedded {
		db, run = setupEmbedded(cfg, *clients, *useIndex, *snapScan, *logDir, *ckptEvery)
	} else {
		run = setupWire(cfg, *addr, *table, *conns, *txnOps, *load, *useIndex, *snapScan)
	}

	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		totalOp atomic.Uint64
		failed  atomic.Uint64
	)
	lats := make([][]time.Duration, *clients)
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := ycsb.NewGenerator(cfg, *seed+uint64(c)*7919)
			samples, fails, err := run(c, gen, &stop)
			if err != nil {
				fatal(err)
			}
			lats[c] = samples
			totalOp.Add(uint64(len(samples)))
			failed.Add(fails)
		}(c)
	}
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, s := range lats {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	n := totalOp.Load()
	unit := "txns"
	if !*embedded && *txnOps > 1 {
		unit = fmt.Sprintf("txns (%d ops each)", *txnOps)
	}
	mode := "wire"
	if *embedded {
		mode = "embedded"
	}
	scans := "none"
	if *scanFrac > 0 {
		scans = fmt.Sprintf("%.0f%%×%d primary", *scanFrac*100, *scanLen)
		if *useIndex {
			scans = fmt.Sprintf("%.0f%%×%d index", *scanFrac*100, *scanLen)
			if *snapScan {
				scans += " (snapshot)"
			}
		}
	}
	fmt.Printf("mode=%s clients=%d keyspace=%d mix=%d/%d read/rmw scans=%s\n",
		mode, *clients, cfg.Keys, cfg.ReadPct, 100-cfg.ReadPct, scans)
	fmt.Printf("throughput: %.0f %s/sec (%d in %v, %d failed)\n",
		float64(n)/elapsed.Seconds(), unit, n, elapsed.Round(time.Millisecond), failed.Load())
	if len(all) > 0 {
		fmt.Printf("latency: p50=%v p95=%v p99=%v max=%v\n",
			pct(all, 50), pct(all, 95), pct(all, 99), all[len(all)-1])
	}
	if db != nil {
		if ds, ok := db.CheckpointDaemon(); ok {
			fmt.Printf("checkpoint daemon: %d checkpoints (last CE=%d, %d rows, %v), %d log segments truncated\n",
				ds.Checkpoints, ds.LastEpoch, ds.LastRows, ds.LastElapsed.Round(time.Millisecond), ds.TruncatedSegments)
			if ds.LastErr != nil {
				fmt.Printf("checkpoint daemon error: %v\n", ds.LastErr)
			}
		}
		db.Close()
	}
}

// ---------------------------------------------------------------------------
// Over-the-wire mode

func setupWire(cfg ycsb.Config, addr, table string, conns, txnOps int, load, useIndex, snapScan bool) func(int, *ycsb.Generator, *atomic.Bool) ([]time.Duration, uint64, error) {
	if load {
		if err := preload(addr, table, cfg, conns); err != nil {
			fatal(fmt.Errorf("preload: %w", err))
		}
		fmt.Printf("loaded %d keys of %d bytes into %q\n", cfg.Keys, cfg.ValueSize, table)
	}
	if useIndex {
		cl, err := client.Dial(addr, client.Options{Conns: 1})
		if err != nil {
			fatal(fmt.Errorf("dial: %w", err))
		}
		if err := cl.CreateIndex(indexName, table, false, indexSegs()); err != nil {
			fatal(fmt.Errorf("create index: %w", err))
		}
		cl.Close()
	}
	return func(c int, gen *ycsb.Generator, stop *atomic.Bool) ([]time.Duration, uint64, error) {
		cl, err := client.Dial(addr, client.Options{Conns: conns})
		if err != nil {
			return nil, 0, fmt.Errorf("dial: %w", err)
		}
		defer cl.Close()
		var kb []byte
		var fails uint64
		samples := make([]time.Duration, 0, 1<<18)
		for !stop.Load() {
			t0 := time.Now()
			var err error
			op := gen.Next()
			switch {
			case op.Scan:
				err = runWireScan(cl, table, op, &kb, useIndex, snapScan)
			case txnOps > 1:
				err = runTxn(cl, table, gen, op, txnOps, &kb)
			default:
				err = runOp(cl, table, op, &kb)
			}
			if err != nil {
				fails++
				continue
			}
			samples = append(samples, time.Since(t0))
		}
		return samples, fails, nil
	}
}

// runOp issues one YCSB point operation: GET for reads, ADD for RMWs (the
// server-side equivalent of read-increment-write in one transaction).
func runOp(cl *client.Client, table string, op ycsb.Op, kb *[]byte) error {
	*kb = ycsb.Key(op.Key, *kb)
	if op.Read {
		_, err := cl.Get(table, *kb)
		return err
	}
	_, err := cl.Add(table, *kb, 1)
	return err
}

// runWireScan issues one scan: a primary range scan, or an index scan
// through the counter index (counters are small, so an 8-byte zero lower
// bound covers the populated secondary range).
func runWireScan(cl *client.Client, table string, op ycsb.Op, kb *[]byte, useIndex, snapshot bool) error {
	*kb = ycsb.Key(op.Key, *kb)
	if useIndex {
		_, err := cl.IndexScan(indexName, nil, nil, op.Len, snapshot)
		return err
	}
	_, err := cl.Scan(table, *kb, nil, op.Len)
	return err
}

// runTxn batches generated point ops (starting with op) into one multi-op
// transaction frame.
func runTxn(cl *client.Client, table string, gen *ycsb.Generator, op ycsb.Op, n int, kb *[]byte) error {
	txn := cl.Txn()
	for i := 0; i < n; i++ {
		if i > 0 {
			for {
				op = gen.Next()
				if !op.Scan { // scans cannot ride inside TXN frames
					break
				}
			}
		}
		*kb = ycsb.Key(op.Key, *kb)
		key := append([]byte(nil), *kb...)
		if op.Read {
			txn.Get(table, key)
		} else {
			txn.Add(table, key, 1)
		}
	}
	_, err := txn.Exec()
	return err
}

// preload inserts the key space through the wire in batched TXN frames,
// fanned out over a few loader goroutines.
func preload(addr, table string, cfg ycsb.Config, conns int) error {
	const loaders = 4
	const batch = 128
	var wg sync.WaitGroup
	errc := make(chan error, loaders)
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.Options{Conns: conns})
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			var kb []byte
			for lo := l * batch; lo < cfg.Keys; lo += loaders * batch {
				hi := lo + batch
				if hi > cfg.Keys {
					hi = cfg.Keys
				}
				txn := cl.Txn()
				for i := lo; i < hi; i++ {
					kb = ycsb.Key(uint64(i), kb)
					// Fresh buffers: the Txn holds every op's slices
					// until Exec encodes the frame.
					val := make([]byte, cfg.ValueSize)
					val[len(val)-1] = byte(i)
					txn.Insert(table, append([]byte(nil), kb...), val)
				}
				if _, err := txn.Exec(); err != nil {
					errc <- fmt.Errorf("batch at %d: %w", lo, err)
					return
				}
			}
		}(l)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		return err
	}
	return nil
}

// ---------------------------------------------------------------------------
// Embedded mode

// setupEmbedded opens an in-process database with one worker per client,
// loads the key space, optionally creates the counter index (through the
// same backfill path a remote CREATE_INDEX takes), and returns a runner
// executing the identical op mix directly on the engine. With ckptEvery
// set, durability and the background checkpoint daemon run under the
// load, so checkpointing's interference with p50/p99 latency shows up in
// the standard report.
func setupEmbedded(cfg ycsb.Config, clients int, useIndex, snapScan bool, logDir string, ckptEvery time.Duration) (*silo.DB, func(int, *ycsb.Generator, *atomic.Bool) ([]time.Duration, uint64, error)) {
	opts := silo.Options{Workers: clients}
	if ckptEvery > 0 || logDir != "" {
		if logDir == "" {
			var err error
			logDir, err = os.MkdirTemp("", "silo-loadgen")
			if err != nil {
				fatal(err)
			}
			fmt.Printf("durability dir: %s\n", logDir)
		}
		opts.Durability = &silo.DurabilityOptions{
			Dir:                logDir,
			Loggers:            2,
			SegmentBytes:       16 << 20,
			CheckpointInterval: ckptEvery,
		}
	}
	db, err := silo.Open(opts)
	if err != nil {
		fatal(err)
	}
	ycsb.LoadSilo(db.Store(), cfg)
	tbl := db.Table(ycsb.TableName)
	fmt.Printf("loaded %d keys of %d bytes (embedded)\n", cfg.Keys, cfg.ValueSize)
	var ix *silo.Index
	if useIndex {
		segs := make([]silo.IndexSeg, 0, 1)
		for _, sg := range indexSegs() {
			segs = append(segs, silo.IndexSeg{FromValue: sg.FromValue, Off: int(sg.Off), Len: int(sg.Len)})
		}
		ix, err = db.CreateIndexSpec(0, tbl, indexName, false, segs)
		if err != nil {
			fatal(fmt.Errorf("create index: %w", err))
		}
	}
	return db, func(c int, gen *ycsb.Generator, stop *atomic.Bool) ([]time.Duration, uint64, error) {
		w := db.Store().Worker(c)
		var kb []byte
		var fails uint64
		samples := make([]time.Duration, 0, 1<<18)
		for !stop.Load() {
			t0 := time.Now()
			op := gen.Next()
			ok := true
			if op.Scan && ix != nil {
				ok = runEmbeddedIndexScan(db, c, ix, op.Len, snapScan)
			} else {
				ok, kb = ycsb.RunSiloOp(w, tbl, op, kb)
			}
			if !ok {
				fails++
				continue
			}
			samples = append(samples, time.Since(t0))
		}
		return samples, fails, nil
	}
}

// runEmbeddedIndexScan resolves up to n entries through the counter index,
// serializably or at a snapshot.
func runEmbeddedIndexScan(db *silo.DB, worker int, ix *silo.Index, n int, snapshot bool) bool {
	count := 0
	visit := func(_, _, _ []byte) bool {
		count++
		return count < n
	}
	var err error
	if snapshot {
		err = db.RunSnapshot(worker, func(stx *silo.SnapTx) error {
			count = 0
			return silo.ScanIndexSnapshot(stx, ix, []byte{0}, nil, visit)
		})
	} else {
		err = db.RunNoRetry(worker, func(tx *silo.Tx) error {
			count = 0
			return silo.ScanIndex(tx, ix, []byte{0}, nil, visit)
		})
	}
	return err == nil
}

// pct returns the p-th percentile of sorted samples.
func pct(sorted []time.Duration, p int) time.Duration {
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silo-loadgen:", err)
	os.Exit(1)
}
