// Command silo-loadgen drives a silo-server over TCP with the paper's
// YCSB-like mix (§5.2: uniform keys, 100-byte records, 80% reads / 20%
// read-modify-writes) and reports closed-loop throughput and latency
// percentiles. The same op generation (internal/workload/ycsb) backs the
// embedded benchmarks in silo-bench, so embedded and over-the-wire numbers
// are directly comparable.
//
// Usage:
//
//	silo-server -addr :4555 &
//	silo-loadgen -addr localhost:4555 -load -keys 100000
//	silo-loadgen -addr localhost:4555 -clients 16 -conns 4 -duration 10s
//
// Reads map to GET, read-modify-writes to ADD (a server-side serializable
// increment in one round trip); -txn batches each client's ops into
// multi-op one-shot transaction frames instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"silo/client"
	"silo/internal/workload/ycsb"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:4555", "server address")
		clients  = flag.Int("clients", 8, "closed-loop client goroutines")
		conns    = flag.Int("conns", 2, "pooled connections per client")
		duration = flag.Duration("duration", 5*time.Second, "measured run length")
		keys     = flag.Int("keys", 100000, "key-space size (paper: 160M)")
		valSize  = flag.Int("valuesize", 100, "record size in bytes (paper: 100)")
		readPct  = flag.Int("readpct", 80, "percentage of reads (paper: 80)")
		table    = flag.String("table", ycsb.TableName, "table name")
		load     = flag.Bool("load", false, "preload the key space before the run")
		txnOps   = flag.Int("txn", 0, "ops per multi-op TXN frame (0 = single-op requests)")
		seed     = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	cfg := ycsb.Config{Keys: *keys, ValueSize: *valSize, ReadPct: *readPct}

	if *load {
		if err := preload(*addr, *table, cfg, *conns); err != nil {
			fatal(fmt.Errorf("preload: %w", err))
		}
		fmt.Printf("loaded %d keys of %d bytes into %q\n", cfg.Keys, cfg.ValueSize, *table)
	}

	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		totalOp atomic.Uint64
		failed  atomic.Uint64
	)
	lats := make([][]time.Duration, *clients)
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := client.Dial(*addr, client.Options{Conns: *conns})
			if err != nil {
				fatal(fmt.Errorf("dial: %w", err))
			}
			defer cl.Close()
			gen := ycsb.NewGenerator(cfg, *seed+uint64(c)*7919)
			var kb []byte
			samples := make([]time.Duration, 0, 1<<18)
			for !stop.Load() {
				t0 := time.Now()
				var err error
				if *txnOps > 1 {
					err = runTxn(cl, *table, gen, *txnOps, &kb)
				} else {
					err = runOp(cl, *table, gen.Next(), &kb)
				}
				if err != nil {
					failed.Add(1)
					continue
				}
				samples = append(samples, time.Since(t0))
				totalOp.Add(1)
			}
			lats[c] = samples
		}(c)
	}
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, s := range lats {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	n := totalOp.Load()
	unit := "txns"
	if *txnOps > 1 {
		unit = fmt.Sprintf("txns (%d ops each)", *txnOps)
	}
	fmt.Printf("clients=%d conns/client=%d keyspace=%d mix=%d/%d read/rmw\n",
		*clients, *conns, cfg.Keys, cfg.ReadPct, 100-cfg.ReadPct)
	fmt.Printf("throughput: %.0f %s/sec (%d in %v, %d failed)\n",
		float64(n)/elapsed.Seconds(), unit, n, elapsed.Round(time.Millisecond), failed.Load())
	if len(all) > 0 {
		fmt.Printf("latency: p50=%v p95=%v p99=%v max=%v\n",
			pct(all, 50), pct(all, 95), pct(all, 99), all[len(all)-1])
	}
}

// runOp issues one YCSB operation: GET for reads, ADD for RMWs (the
// server-side equivalent of read-increment-write in one transaction).
func runOp(cl *client.Client, table string, op ycsb.Op, kb *[]byte) error {
	*kb = ycsb.Key(op.Key, *kb)
	if op.Read {
		_, err := cl.Get(table, *kb)
		return err
	}
	_, err := cl.Add(table, *kb, 1)
	return err
}

// runTxn batches n generated ops into one multi-op transaction frame.
func runTxn(cl *client.Client, table string, gen *ycsb.Generator, n int, kb *[]byte) error {
	txn := cl.Txn()
	for i := 0; i < n; i++ {
		op := gen.Next()
		*kb = ycsb.Key(op.Key, *kb)
		key := append([]byte(nil), *kb...)
		if op.Read {
			txn.Get(table, key)
		} else {
			txn.Add(table, key, 1)
		}
	}
	_, err := txn.Exec()
	return err
}

// preload inserts the key space through the wire in batched TXN frames,
// fanned out over a few loader goroutines.
func preload(addr, table string, cfg ycsb.Config, conns int) error {
	const loaders = 4
	const batch = 128
	var wg sync.WaitGroup
	errc := make(chan error, loaders)
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.Options{Conns: conns})
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			var kb []byte
			for lo := l * batch; lo < cfg.Keys; lo += loaders * batch {
				hi := lo + batch
				if hi > cfg.Keys {
					hi = cfg.Keys
				}
				txn := cl.Txn()
				for i := lo; i < hi; i++ {
					kb = ycsb.Key(uint64(i), kb)
					// Fresh buffers: the Txn holds every op's slices
					// until Exec encodes the frame.
					val := make([]byte, cfg.ValueSize)
					val[len(val)-1] = byte(i)
					txn.Insert(table, append([]byte(nil), kb...), val)
				}
				if _, err := txn.Exec(); err != nil {
					errc <- fmt.Errorf("batch at %d: %w", lo, err)
					return
				}
			}
		}(l)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		return err
	}
	return nil
}

// pct returns the p-th percentile of sorted samples.
func pct(sorted []time.Duration, p int) time.Duration {
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silo-loadgen:", err)
	os.Exit(1)
}
