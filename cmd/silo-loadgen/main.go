// Command silo-loadgen drives a silo database with the paper's YCSB-like
// mix (§5.2: uniform keys, 100-byte records, 80% reads / 20%
// read-modify-writes) and reports closed-loop throughput and latency
// percentiles. The same op generation (internal/workload/ycsb) backs the
// embedded benchmarks in silo-bench, so embedded and over-the-wire numbers
// are directly comparable — and -embedded runs the identical mix against
// an in-process database with the same report.
//
// A YCSB-E-style scan-heavy mode mixes in range scans (-scan-frac,
// -scan-len); with -index the scans go through a secondary index on the
// record's counter field instead of the primary key space, exercising
// CREATE_INDEX/ISCAN over the wire and the index subsystem embedded
// (-snapshot-scans reads the index at a consistent snapshot). Index scans
// resolve rows with batched multi-get descents by default;
// -per-entry-resolve (embedded only) restores the one-point-read-per-
// entry baseline for comparison, and -covering declares the index with an
// include list so scans are served from entry values alone, never
// touching the primary table.
//
// Usage:
//
//	silo-server -addr :4555 &
//	silo-loadgen -addr localhost:4555 -load -keys 100000
//	silo-loadgen -addr localhost:4555 -clients 16 -conns 4 -duration 10s
//	silo-loadgen -addr localhost:4555 -scan-frac 0.95 -scan-len 100 -index
//	silo-loadgen -embedded -clients 8 -scan-frac 0.5
//
// Reads map to GET, read-modify-writes to ADD (a server-side serializable
// increment in one round trip); -txn batches each client's point ops into
// multi-op one-shot transaction frames instead. -trace-frac samples a
// fraction of point ops as TRACE frames, and the report then includes the
// average server-side span timeline (queue wait, execute, validate, log,
// fsync wait, respond) plus the engine's abort-reason breakdown.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"silo"
	"silo/client"
	"silo/internal/obs"
	"silo/internal/workload/ycsb"
	"silo/wire"
)

// indexName is the secondary index used by -index: the big-endian counter
// field occupying the first 8 bytes of every record.
const indexName = "usertable_by_ctr"

func indexSegs() []silo.IndexSeg {
	return []silo.IndexSeg{{FromValue: true, Off: 0, Len: 8}}
}

// coveringWidth is how many leading record bytes -covering projects into
// the index entries (counter + 8 payload bytes): the scan is then served
// from entry values alone, no primary resolution at all.
const coveringWidth = 16

func coveringIncs() []silo.IndexSeg {
	return []silo.IndexSeg{{FromValue: true, Off: 0, Len: coveringWidth}}
}

// toWireSegs converts the canonical silo-form specs above for the wire
// client's CREATE_INDEX calls.
func toWireSegs(in []silo.IndexSeg) []wire.IndexSeg {
	segs := make([]wire.IndexSeg, 0, len(in))
	for _, sg := range in {
		segs = append(segs, wire.IndexSeg{FromValue: sg.FromValue, Off: uint16(sg.Off), Len: uint16(sg.Len)})
	}
	return segs
}

func main() {
	var (
		addr      = flag.String("addr", "localhost:4555", "server address")
		clients   = flag.Int("clients", 8, "closed-loop client goroutines")
		conns     = flag.Int("conns", 2, "pooled connections per client")
		duration  = flag.Duration("duration", 5*time.Second, "measured run length")
		keys      = flag.Int("keys", 100000, "key-space size (paper: 160M)")
		valSize   = flag.Int("valuesize", 100, "record size in bytes (paper: 100)")
		readPct   = flag.Int("readpct", 80, "percentage of point ops that are reads (paper: 80)")
		scanFrac  = flag.Float64("scan-frac", 0, "fraction (0..1) of ops that are scans (YCSB-E style)")
		scanLen   = flag.Int("scan-len", 100, "keys per scan")
		hotFrac   = flag.Float64("hot-frac", 0, "fraction (0..1) of point ops directed at the hot key set (0 = uniform, the paper's distribution)")
		hotKeys   = flag.Int("hot-keys", 8, "size of the hot key set -hot-frac draws from")
		useIndex  = flag.Bool("index", false, "route scans through a secondary index on the counter field")
		covering  = flag.Bool("covering", false, "make the scan index covering and serve scans from entry values only (implies -index)")
		perEntry  = flag.Bool("per-entry-resolve", false, "resolve embedded index scans with per-entry point reads instead of batched multi-get (comparison baseline)")
		snapScan  = flag.Bool("snapshot-scans", false, "run index scans against a consistent snapshot")
		table     = flag.String("table", ycsb.TableName, "table name")
		load      = flag.Bool("load", false, "preload the key space before the run")
		txnOps    = flag.Int("txn", 0, "point ops per multi-op TXN frame (0 = single-op requests)")
		embedded  = flag.Bool("embedded", false, "run against an in-process database instead of a server")
		logDir    = flag.String("logdir", "", "embedded durability directory (default: a temp dir when -checkpoint-interval is set)")
		ckptEvery = flag.Duration("checkpoint-interval", 0, "run the checkpoint daemon under load (embedded; 0 = off)")
		traceFrac = flag.Float64("trace-frac", 0, "fraction (0..1) of point ops issued as TRACE frames with span capture (wire mode)")
		seed      = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	cfg := ycsb.Config{
		Keys: *keys, ValueSize: *valSize, ReadPct: *readPct,
		ScanFrac: *scanFrac, ScanLen: *scanLen,
		HotFrac: *hotFrac, HotKeys: *hotKeys,
	}
	if *hotFrac < 0 || *hotFrac > 1 {
		fatal(fmt.Errorf("-hot-frac must be in [0,1]"))
	}
	if *covering {
		*useIndex = true
		if cfg.ValueSize < coveringWidth {
			fatal(fmt.Errorf("-covering projects the first %d record bytes; -valuesize %d is too small", coveringWidth, cfg.ValueSize))
		}
	}
	if *snapScan && !*useIndex {
		fatal(fmt.Errorf("-snapshot-scans requires -index"))
	}
	if *perEntry && !*useIndex {
		fatal(fmt.Errorf("-per-entry-resolve requires -index"))
	}
	if *perEntry && !*embedded {
		fatal(fmt.Errorf("-per-entry-resolve is an embedded-only baseline (the server always batches ISCAN resolution)"))
	}
	if *perEntry && *covering {
		fatal(fmt.Errorf("-per-entry-resolve and -covering are exclusive (a covering scan resolves nothing)"))
	}
	if (*ckptEvery > 0 || *logDir != "") && !*embedded {
		fatal(fmt.Errorf("-checkpoint-interval and -logdir drive an in-process database: add -embedded (use silo-server's flags for a remote daemon)"))
	}
	if *traceFrac < 0 || *traceFrac > 1 {
		fatal(fmt.Errorf("-trace-frac must be in [0,1]"))
	}
	if *traceFrac > 0 && *embedded {
		fatal(fmt.Errorf("-trace-frac samples TRACE frames over the wire; it has no embedded mode"))
	}

	scanMode := scanModeOf(*useIndex, *covering, *perEntry)
	if *snapScan && scanMode == scanBatched {
		// Snapshot index scans resolve per-entry (there is no batched
		// snapshot variant — snapshots never abort, so batching buys no
		// validation-window shrinkage); label the report with what runs.
		scanMode = scanPerEntry
	}
	var db *silo.DB
	var run func(c int, gen *ycsb.Generator, stop *atomic.Bool) (clientResult, error)
	if *embedded {
		db, run = setupEmbedded(cfg, *clients, scanMode, *snapScan, *logDir, *ckptEvery)
	} else {
		run = setupWire(cfg, *addr, *table, *conns, *txnOps, *load, scanMode, *snapScan, *traceFrac)
	}

	var (
		wg   sync.WaitGroup
		stop atomic.Bool
	)
	results := make([]clientResult, *clients)
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := ycsb.NewGenerator(cfg, *seed+uint64(c)*7919)
			res, err := run(c, gen, &stop)
			if err != nil {
				fatal(err)
			}
			results[c] = res
		}(c)
	}
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var agg clientResult
	for i := range results {
		agg.merge(&results[i])
	}
	n := agg.lat.Count
	unit := "txns"
	if !*embedded && *txnOps > 1 {
		unit = fmt.Sprintf("txns (%d ops each)", *txnOps)
	}
	mode := "wire"
	if *embedded {
		mode = "embedded"
	}
	scans := "none"
	if *scanFrac > 0 {
		scans = fmt.Sprintf("%.0f%%×%d primary", *scanFrac*100, *scanLen)
		if *useIndex {
			scans = fmt.Sprintf("%.0f%%×%d index (%s)", *scanFrac*100, *scanLen, scanMode)
			if *snapScan {
				scans += " (snapshot)"
			}
		}
	}
	skew := ""
	if cfg.HotFrac > 0 {
		skew = fmt.Sprintf(" hot=%.0f%%/%d", cfg.HotFrac*100, cfg.HotKeys)
	}
	fmt.Printf("mode=%s clients=%d keyspace=%d mix=%d/%d read/rmw scans=%s%s\n",
		mode, *clients, cfg.Keys, cfg.ReadPct, 100-cfg.ReadPct, scans, skew)
	fmt.Printf("throughput: %.0f %s/sec (%d in %v, %d failed)\n",
		float64(n)/elapsed.Seconds(), unit, n, elapsed.Round(time.Millisecond), agg.fails)
	if agg.lat.Count > 0 {
		fmt.Printf("latency: p50=%v p90=%v p99=%v p99.9=%v\n",
			pctl(agg.lat, 0.50), pctl(agg.lat, 0.90), pctl(agg.lat, 0.99), pctl(agg.lat, 0.999))
	}
	if agg.traced > 0 {
		d := time.Duration(agg.traced)
		sp := &agg.spans
		fmt.Printf("traced %d ops, avg: queue=%v exec=%v validate=%v log=%v fsync=%v respond=%v (%.2f retries/op)\n",
			agg.traced, sp.Queue/d, sp.Exec/d, sp.Validate/d, sp.Log/d, sp.Fsync/d, sp.Respond/d,
			float64(sp.Retries)/float64(agg.traced))
	}
	printAborts(db, *addr, *embedded)
	if db != nil {
		if ds, ok := db.CheckpointDaemon(); ok {
			fmt.Printf("checkpoint daemon: %d checkpoints (last CE=%d, %d rows, %v), %d log segments truncated\n",
				ds.Checkpoints, ds.LastEpoch, ds.LastRows, ds.LastElapsed.Round(time.Millisecond), ds.TruncatedSegments)
			if ds.LastErr != nil {
				fmt.Printf("checkpoint daemon error: %v\n", ds.LastErr)
			}
		}
		db.Close()
	}
}

// clientResult is one closed-loop client's tally: a latency histogram
// (bounded memory regardless of run length, unlike the raw sample slice
// it replaced), failure count, and — when TRACE sampling is on — the
// summed span timeline across its traced ops.
type clientResult struct {
	lat    obs.HistSnapshot
	fails  uint64
	spans  silo.TxnSpans
	traced uint64
}

func (r *clientResult) merge(o *clientResult) {
	r.lat.Merge(o.lat)
	r.fails += o.fails
	r.traced += o.traced
	r.spans.Queue += o.spans.Queue
	r.spans.Exec += o.spans.Exec
	r.spans.Validate += o.spans.Validate
	r.spans.Log += o.spans.Log
	r.spans.Fsync += o.spans.Fsync
	r.spans.Respond += o.spans.Respond
	r.spans.Retries += o.spans.Retries
}

func (r *clientResult) addSpans(sp *silo.TxnSpans) {
	r.traced++
	r.spans.Queue += sp.Queue
	r.spans.Exec += sp.Exec
	r.spans.Validate += sp.Validate
	r.spans.Log += sp.Log
	r.spans.Fsync += sp.Fsync
	r.spans.Respond += sp.Respond
	r.spans.Retries += sp.Retries
}

// pctl reads a latency percentile from the merged histogram.
func pctl(s obs.HistSnapshot, q float64) time.Duration {
	return time.Duration(s.Quantile(q))
}

// printAborts reports the engine's abort-reason breakdown after the run:
// embedded runs read the in-process snapshot, wire runs fetch one STATS
// frame. Silence means the breakdown was unavailable (server gone), not
// zero aborts. Wire runs against a durable-group-ack server additionally
// report the release pipeline's view of the run — when that line is
// present, the throughput number above is durable throughput: every
// counted write was epoch-durable before its ack arrived.
func printAborts(db *silo.DB, addr string, embedded bool) {
	var snap *obs.Snapshot
	if embedded {
		if db == nil {
			return
		}
		snap = db.Observe()
	} else {
		cl, err := client.Dial(addr, client.Options{Conns: 1})
		if err != nil {
			return
		}
		defer cl.Close()
		if snap, err = cl.Stats(); err != nil {
			return
		}
	}
	var total uint64
	line := "aborts:"
	for _, reason := range []string{"read_validation", "node_validation", "hook_poisoned", "explicit"} {
		v := snap.Value("silo_core_aborts_total", reason)
		total += v
		line += fmt.Sprintf(" %s=%d", reason, v)
	}
	fmt.Printf("%s (total %d)\n", line, total)
	if h := snap.Get("silo_server_release_lag_ns", ""); h != nil {
		dline := fmt.Sprintf("durable acks: %d writes released at D=%d (parked now=%d)",
			snap.Value("silo_server_released_total", ""),
			snap.Value("silo_wal_durable_epoch", ""),
			snap.Value("silo_server_parked_responses", ""))
		if h.Hist.Count > 0 {
			dline += fmt.Sprintf(", release lag p50=%v p99=%v",
				time.Duration(h.Hist.Quantile(0.50)), time.Duration(h.Hist.Quantile(0.99)))
		}
		fmt.Println(dline)
	}
}

// scanMode names how -index scans resolve rows.
type scanMode int

const (
	scanPrimary  scanMode = iota // no index: primary range scans
	scanBatched                  // index scan, batched multi-get resolution (default)
	scanPerEntry                 // index scan, one point read per entry (baseline)
	scanCovering                 // covering index scan, no resolution at all
)

func (m scanMode) String() string {
	switch m {
	case scanBatched:
		return "batched"
	case scanPerEntry:
		return "per-entry"
	case scanCovering:
		return "covering"
	}
	return "primary"
}

func scanModeOf(useIndex, covering, perEntry bool) scanMode {
	switch {
	case !useIndex:
		return scanPrimary
	case covering:
		return scanCovering
	case perEntry:
		return scanPerEntry
	}
	return scanBatched
}

// ---------------------------------------------------------------------------
// Over-the-wire mode

func setupWire(cfg ycsb.Config, addr, table string, conns, txnOps int, load bool, mode scanMode, snapScan bool, traceFrac float64) func(int, *ycsb.Generator, *atomic.Bool) (clientResult, error) {
	if load {
		if err := preload(addr, table, cfg, conns); err != nil {
			fatal(fmt.Errorf("preload: %w", err))
		}
		fmt.Printf("loaded %d keys of %d bytes into %q\n", cfg.Keys, cfg.ValueSize, table)
	}
	if mode != scanPrimary {
		cl, err := client.Dial(addr, client.Options{Conns: 1})
		if err != nil {
			fatal(fmt.Errorf("dial: %w", err))
		}
		if mode == scanCovering {
			err = cl.CreateCoveringIndex(indexName+"_cov", table, false, toWireSegs(indexSegs()), toWireSegs(coveringIncs()))
		} else {
			err = cl.CreateIndex(indexName, table, false, toWireSegs(indexSegs()))
		}
		if err != nil {
			fatal(fmt.Errorf("create index: %w", err))
		}
		cl.Close()
	}
	// Every 1/traceFrac-th point op goes out as a TRACE frame; the span
	// timelines accumulate into the client's result.
	traceEvery := 0
	if traceFrac > 0 {
		traceEvery = int(1 / traceFrac)
		if traceEvery < 1 {
			traceEvery = 1
		}
	}
	return func(c int, gen *ycsb.Generator, stop *atomic.Bool) (clientResult, error) {
		cl, err := client.Dial(addr, client.Options{Conns: conns})
		if err != nil {
			return clientResult{}, fmt.Errorf("dial: %w", err)
		}
		defer cl.Close()
		var kb []byte
		var res clientResult
		var hist obs.Histogram
		for i := 0; !stop.Load(); i++ {
			t0 := time.Now()
			var err error
			op := gen.Next()
			switch {
			case op.Scan:
				err = runWireScan(cl, table, op, &kb, mode, snapScan)
			case traceEvery > 0 && i%traceEvery == 0:
				var sp *silo.TxnSpans
				sp, err = runTraced(cl, table, gen, op, txnOps, &kb)
				if err == nil {
					res.addSpans(sp)
				}
			case txnOps > 1:
				_, err = buildTxn(cl, table, gen, op, txnOps, &kb).Exec()
			default:
				err = runOp(cl, table, op, &kb)
			}
			if err != nil {
				res.fails++
				continue
			}
			hist.ObserveDuration(time.Since(t0).Nanoseconds())
		}
		res.lat = hist.Snapshot()
		return res, nil
	}
}

// runOp issues one YCSB point operation: GET for reads, ADD for RMWs (the
// server-side equivalent of read-increment-write in one transaction).
func runOp(cl *client.Client, table string, op ycsb.Op, kb *[]byte) error {
	*kb = ycsb.Key(op.Key, *kb)
	if op.Read {
		_, err := cl.Get(table, *kb)
		return err
	}
	_, err := cl.Add(table, *kb, 1)
	return err
}

// indexScanLo builds the entry-key lower bound for an index scan starting
// at op's key: the counter index is non-unique, so entry keys are
// counter ‖ pk, and counters start at zero — (0 ‖ key) therefore begins
// the scan at that user's entry, spreading scan ranges across the whole
// index the way YCSB-E scans spread across the key space (instead of
// every scan hammering the index head).
func indexScanLo(dst []byte, op ycsb.Op) []byte {
	dst = append(dst[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	return ycsb.AppendKey(op.Key, dst)
}

// runWireScan issues one scan: a primary range scan, or an index scan
// through the counter index. Covering mode serves the projected record
// prefix straight from entry values.
func runWireScan(cl *client.Client, table string, op ycsb.Op, kb *[]byte, mode scanMode, snapshot bool) error {
	switch mode {
	case scanCovering:
		*kb = indexScanLo(*kb, op)
		_, err := cl.IndexScanCovering(indexName+"_cov", *kb, nil, op.Len, snapshot)
		return err
	case scanBatched, scanPerEntry:
		*kb = indexScanLo(*kb, op)
		_, err := cl.IndexScan(indexName, *kb, nil, op.Len, snapshot)
		return err
	}
	*kb = ycsb.Key(op.Key, *kb)
	_, err := cl.Scan(table, *kb, nil, op.Len)
	return err
}

// buildTxn batches generated point ops (starting with op) into one
// multi-op transaction builder, ready for Exec or Trace.
func buildTxn(cl *client.Client, table string, gen *ycsb.Generator, op ycsb.Op, n int, kb *[]byte) *client.Txn {
	txn := cl.Txn()
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			for {
				op = gen.Next()
				if !op.Scan { // scans cannot ride inside TXN frames
					break
				}
			}
		}
		*kb = ycsb.Key(op.Key, *kb)
		key := append([]byte(nil), *kb...)
		if op.Read {
			txn.Get(table, key)
		} else {
			txn.Add(table, key, 1)
		}
	}
	return txn
}

// runTraced issues the op (or txnOps-sized batch) as a TRACE frame and
// returns the server's span timeline for it.
func runTraced(cl *client.Client, table string, gen *ycsb.Generator, op ycsb.Op, txnOps int, kb *[]byte) (*silo.TxnSpans, error) {
	_, sp, err := buildTxn(cl, table, gen, op, txnOps, kb).Trace()
	return sp, err
}

// preload inserts the key space through the wire in batched TXN frames,
// fanned out over a few loader goroutines.
func preload(addr, table string, cfg ycsb.Config, conns int) error {
	const loaders = 4
	const batch = 128
	var wg sync.WaitGroup
	errc := make(chan error, loaders)
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.Options{Conns: conns})
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			var kb []byte
			for lo := l * batch; lo < cfg.Keys; lo += loaders * batch {
				hi := lo + batch
				if hi > cfg.Keys {
					hi = cfg.Keys
				}
				txn := cl.Txn()
				for i := lo; i < hi; i++ {
					kb = ycsb.Key(uint64(i), kb)
					// Fresh buffers: the Txn holds every op's slices
					// until Exec encodes the frame.
					val := make([]byte, cfg.ValueSize)
					val[len(val)-1] = byte(i)
					txn.Insert(table, append([]byte(nil), kb...), val)
				}
				if _, err := txn.Exec(); err != nil {
					errc <- fmt.Errorf("batch at %d: %w", lo, err)
					return
				}
			}
		}(l)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		return err
	}
	return nil
}

// ---------------------------------------------------------------------------
// Embedded mode

// setupEmbedded opens an in-process database with one worker per client,
// loads the key space, optionally creates the counter index (through the
// same backfill path a remote CREATE_INDEX takes), and returns a runner
// executing the identical op mix directly on the engine. With ckptEvery
// set, durability and the background checkpoint daemon run under the
// load, so checkpointing's interference with p50/p99 latency shows up in
// the standard report.
func setupEmbedded(cfg ycsb.Config, clients int, mode scanMode, snapScan bool, logDir string, ckptEvery time.Duration) (*silo.DB, func(int, *ycsb.Generator, *atomic.Bool) (clientResult, error)) {
	opts := silo.Options{Workers: clients}
	if ckptEvery > 0 || logDir != "" {
		if logDir == "" {
			var err error
			logDir, err = os.MkdirTemp("", "silo-loadgen")
			if err != nil {
				fatal(err)
			}
			fmt.Printf("durability dir: %s\n", logDir)
		}
		opts.Durability = &silo.DurabilityOptions{
			Dir:                logDir,
			Loggers:            2,
			SegmentBytes:       16 << 20,
			CheckpointInterval: ckptEvery,
		}
	}
	db, err := silo.Open(opts)
	if err != nil {
		fatal(err)
	}
	ycsb.LoadSilo(db.Store(), cfg)
	tbl := db.Table(ycsb.TableName)
	fmt.Printf("loaded %d keys of %d bytes (embedded)\n", cfg.Keys, cfg.ValueSize)
	var ix *silo.Index
	if mode != scanPrimary {
		if mode == scanCovering {
			ix, err = db.CreateCoveringIndexSpec(0, tbl, indexName+"_cov", false, indexSegs(), coveringIncs())
		} else {
			ix, err = db.CreateIndexSpec(0, tbl, indexName, false, indexSegs())
		}
		if err != nil {
			fatal(fmt.Errorf("create index: %w", err))
		}
	}
	return db, func(c int, gen *ycsb.Generator, stop *atomic.Bool) (clientResult, error) {
		w := db.Store().Worker(c)
		var kb []byte
		var res clientResult
		var hist obs.Histogram
		for !stop.Load() {
			t0 := time.Now()
			op := gen.Next()
			ok := true
			if op.Scan && ix != nil {
				kb = indexScanLo(kb, op)
				ok = runEmbeddedIndexScan(db, c, ix, kb, op.Len, mode, snapScan)
			} else {
				ok, kb = ycsb.RunSiloOp(w, tbl, op, kb)
			}
			if !ok {
				res.fails++
				continue
			}
			hist.ObserveDuration(time.Since(t0).Nanoseconds())
		}
		res.lat = hist.Snapshot()
		return res, nil
	}
}

// runEmbeddedIndexScan reads up to n entries through the counter index
// starting at entry key lo — resolving rows per entry or with batched
// multi-get, or serving the covering projection straight from entry
// values — serializably or at a snapshot.
func runEmbeddedIndexScan(db *silo.DB, worker int, ix *silo.Index, lo []byte, n int, mode scanMode, snapshot bool) bool {
	count := 0
	visit := func(_, _, _ []byte) bool {
		count++
		return count < n
	}
	var err error
	switch {
	case snapshot && mode == scanCovering:
		err = db.RunSnapshot(worker, func(stx *silo.SnapTx) error {
			count = 0
			return silo.ScanIndexSnapshotCovering(stx, ix, lo, nil, visit)
		})
	case snapshot:
		err = db.RunSnapshot(worker, func(stx *silo.SnapTx) error {
			count = 0
			return silo.ScanIndexSnapshot(stx, ix, lo, nil, visit)
		})
	case mode == scanCovering:
		err = db.RunNoRetry(worker, func(tx *silo.Tx) error {
			count = 0
			return silo.ScanIndexCovering(tx, ix, lo, nil, visit)
		})
	case mode == scanBatched:
		err = db.RunNoRetry(worker, func(tx *silo.Tx) error {
			count = 0
			return silo.ScanIndexBatched(tx, ix, lo, nil, n, visit)
		})
	default:
		err = db.RunNoRetry(worker, func(tx *silo.Tx) error {
			count = 0
			return silo.ScanIndex(tx, ix, lo, nil, visit)
		})
	}
	return err == nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silo-loadgen:", err)
	os.Exit(1)
}
