package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"silo"
	"silo/internal/bench"
	"silo/internal/core"
	"silo/internal/kvstore"
	"silo/internal/tid"
	"silo/internal/wal"
	"silo/internal/workload/tpcc"
	"silo/internal/workload/ycsb"
)

func (c config) scale(warehouses int) tpcc.Scale {
	if c.full {
		return tpcc.FullScale(warehouses)
	}
	return tpcc.DefaultScale(warehouses)
}

func newStore(workers int, mutate func(*core.Options)) *core.Store {
	opts := core.DefaultOptions(workers)
	if mutate != nil {
		mutate(&opts)
	}
	return core.NewStore(opts)
}

// newDB opens a catalog-backed database for the experiment groups that
// exercise the public API; groups that need the raw wal.Manager handle
// (latency heartbeats, log-mode sweeps) still assemble a bare store.
func newDB(workers int, mutate func(*silo.Options)) *silo.DB {
	opts := silo.Options{Workers: workers}
	if mutate != nil {
		mutate(&opts)
	}
	db, err := silo.Open(opts)
	if err != nil {
		panic(err)
	}
	return db
}

// ---- Figure 4: overhead of small transactions (YCSB variant) ----

func fig4(cfg config) {
	header("Figure 4: YCSB-A variant — Key-Value vs MemSilo vs MemSilo+GlobalTID")
	wcfg := ycsb.DefaultConfig(cfg.keys)
	fmt.Printf("keys=%d value=%dB read/rmw=%d/%d\n", wcfg.Keys, wcfg.ValueSize, wcfg.ReadPct, 100-wcfg.ReadPct)

	for _, workers := range cfg.workers {
		// Key-Value: the bare tree.
		kv := kvstore.New()
		ycsb.LoadKV(kv, wcfg)
		r := bench.Median(cfg.runs, func() bench.Result {
			return bench.Run("Key-Value", workers, cfg.warmup, cfg.seconds,
				func(wid int, stop *atomic.Bool, ops, aborts *atomic.Uint64) {
					gen := ycsb.NewGenerator(wcfg, uint64(wid)+1)
					var kb, vb []byte
					for !stop.Load() {
						kb, vb = ycsb.RunKVOp(kv, gen.Next(), kb, vb)
						ops.Add(1)
					}
				})
		})
		fmt.Println(r)

		for _, sys := range []struct {
			name      string
			globalTID bool
		}{{"MemSilo", false}, {"MemSilo+GlobalTID", true}} {
			s := newStore(workers, func(o *core.Options) { o.GlobalTID = sys.globalTID })
			tbl := ycsb.LoadSilo(s, wcfg)
			r := bench.Median(cfg.runs, func() bench.Result {
				return bench.Run(sys.name, workers, cfg.warmup, cfg.seconds,
					func(wid int, stop *atomic.Bool, ops, aborts *atomic.Uint64) {
						gen := ycsb.NewGenerator(wcfg, uint64(wid)+1)
						w := s.Worker(wid)
						var kb []byte
						for !stop.Load() {
							var ok bool
							ok, kb = ycsb.RunSiloOp(w, tbl, gen.Next(), kb)
							if ok {
								ops.Add(1)
							} else {
								aborts.Add(1)
							}
						}
					})
			})
			fmt.Println(r)
			s.Close()
		}
	}
}

// ---- Figures 5 & 6: TPC-C throughput and per-core throughput ----

// tpccMixRun drives the standard mix with one client per worker, home
// warehouse wid%warehouses+1.
func tpccMixRun(name string, s *core.Store, t *tpcc.Tables, sc tpcc.Scale, workers int,
	ccfg tpcc.ClientConfig, cfg config, durable *wal.Manager) bench.Result {
	return bench.Run(name, workers, cfg.warmup, cfg.seconds,
		func(wid int, stop *atomic.Bool, ops, aborts *atomic.Uint64) {
			home := wid%sc.Warehouses + 1
			cl := tpcc.NewClient(t, sc, s.Worker(wid), home, ccfg, uint64(wid)*7919+3)
			wl := (*wal.WorkerLog)(nil)
			if durable != nil {
				wl = durable.WorkerLog(wid)
			}
			for !stop.Load() {
				tt := cl.NextType()
				for {
					err := cl.RunOnce(tt)
					if err == core.ErrConflict {
						aborts.Add(1)
						continue
					}
					ops.Add(1)
					break
				}
				if wl != nil {
					wl.MaybeHeartbeat()
				}
			}
		})
}

func fig5and6(cfg config) {
	header("Figures 5 & 6: TPC-C throughput, MemSilo vs Silo (persistent), warehouses = workers")
	for _, workers := range cfg.workers {
		sc := cfg.scale(workers)
		ccfg := tpcc.StandardConfig()

		// MemSilo.
		db := newDB(workers, nil)
		t := tpcc.Load(db, sc)
		r := bench.Median(cfg.runs, func() bench.Result {
			return tpccMixRun("MemSilo", db.Store(), t, sc, workers, ccfg, cfg, nil)
		})
		fmt.Println(r)
		db.Close()

		// Silo: full persistence. The raw manager handle feeds the
		// heartbeat/durability plumbing of tpccMixRun, so this group
		// stays on the store-level loader.
		dir := filepath.Join(cfg.logDir, fmt.Sprintf("fig5-w%d", workers))
		os.MkdirAll(dir, 0o755)
		s := newStore(workers, nil)
		m, err := wal.Attach(s, wal.Config{Dir: dir, Loggers: cfg.loggers, Sync: cfg.sync})
		if err != nil {
			panic(err)
		}
		t = tpcc.LoadStore(s, sc)
		m.Start()
		r = bench.Median(cfg.runs, func() bench.Result {
			return tpccMixRun("Silo", s, t, sc, workers, ccfg, cfg, m)
		})
		fmt.Println(r)
		m.Stop()
		s.Close()
		os.RemoveAll(dir)
	}
}

// ---- Figure 7: transaction latency under persistence ----

func fig7(cfg config) {
	header("Figure 7: TPC-C latency to durability — Silo (disk) vs Silo+tmpfs (memory)")
	for _, workers := range cfg.workers {
		sc := cfg.scale(workers)
		for _, mode := range []struct {
			name     string
			inMemory bool
		}{{"Silo", false}, {"Silo+tmpfs", true}} {
			dir := filepath.Join(cfg.logDir, fmt.Sprintf("fig7-w%d", workers))
			os.MkdirAll(dir, 0o755)
			s := newStore(workers, nil)
			m, err := wal.Attach(s, wal.Config{
				Dir: dir, Loggers: cfg.loggers, Sync: cfg.sync, InMemory: mode.inMemory,
			})
			if err != nil {
				panic(err)
			}
			t := tpcc.LoadStore(s, sc)
			m.Start()
			hist := &bench.Histogram{}
			ccfg := tpcc.StandardConfig()
			r := bench.Run(mode.name, workers, cfg.warmup, cfg.seconds,
				func(wid int, stop *atomic.Bool, ops, aborts *atomic.Uint64) {
					home := wid%sc.Warehouses + 1
					cl := tpcc.NewClient(t, sc, s.Worker(wid), home, ccfg, uint64(wid)*131+7)
					wl := m.WorkerLog(wid)
					n := 0
					for !stop.Load() {
						tt := cl.NextType()
						start := time.Now()
						for {
							err := cl.RunOnce(tt)
							if err == core.ErrConflict {
								aborts.Add(1)
								continue
							}
							break
						}
						ops.Add(1)
						// A transaction's result is released to its client
						// only when its epoch is durable (§4.10), so latency
						// is dominated by the epoch period plus log flushing.
						// Workers process other requests meanwhile; sample
						// the durability wait on every 32nd transaction
						// rather than stalling the worker on each one.
						if n++; n%32 == 0 {
							wl.Heartbeat()
							m.WaitDurable(tid.Word(s.Worker(wid).LastCommitTID()).Epoch())
							hist.Record(time.Since(start))
						}
					}
				})
			r.Lat = hist
			fmt.Println(r)
			m.Stop()
			s.Close()
			os.RemoveAll(dir)
		}
	}
}

// ---- Figure 8: cross-partition sweep, Partitioned-Store vs MemSilo(+Split) ----

func fig8(cfg config) {
	header(fmt.Sprintf("Figure 8: 100%% new-order, %d warehouses/workers, cross-partition sweep", cfg.wh))
	workers := cfg.wh
	sc := cfg.scale(cfg.wh)
	ccfg := tpcc.StandardConfig()
	remotePcts := []int{0, 1, 2, 5, 10, 20, 40, 60, 80}

	fmt.Println("x-axis: probability a transaction touches ≥1 remote warehouse (paper's axis);")
	fmt.Println("swept internally as per-item remote probability, ~10 items/txn")

	for _, itemPct := range remotePcts {
		ccfg.RemoteItemPct = itemPct
		// P(cross-partition txn) ≈ 1 − (1−p)^10 for the average 10 items.
		crossTxn := 1.0
		q := 1.0 - float64(itemPct)/100
		for i := 0; i < 10; i++ {
			crossTxn *= q
		}
		crossTxn = 1 - crossTxn
		label := fmt.Sprintf("[cross-txn≈%2.0f%%]", crossTxn*100)

		// Partitioned-Store.
		ps := tpcc.LoadPartitioned(sc)
		r := bench.Median(cfg.runs, func() bench.Result {
			return bench.Run("Partitioned-Store "+label, workers, cfg.warmup, cfg.seconds,
				func(wid int, stop *atomic.Bool, ops, aborts *atomic.Uint64) {
					cl := tpcc.NewPartClient(ps, sc, wid%sc.Warehouses+1, ccfg, uint64(wid)*17+1)
					for !stop.Load() {
						cl.NewOrder()
						ops.Add(1)
					}
				})
		})
		fmt.Println(r)

		// MemSilo+Split.
		s := newStore(workers, nil)
		st := tpcc.LoadSplit(s, sc)
		r = bench.Median(cfg.runs, func() bench.Result {
			return bench.Run("MemSilo+Split "+label, workers, cfg.warmup, cfg.seconds,
				func(wid int, stop *atomic.Bool, ops, aborts *atomic.Uint64) {
					cl := tpcc.NewSplitClient(st, s.Worker(wid), wid%sc.Warehouses+1, ccfg, uint64(wid)*23+9)
					for !stop.Load() {
						for {
							err := cl.NewOrder()
							if err == core.ErrConflict {
								aborts.Add(1)
								continue
							}
							ops.Add(1)
							break
						}
					}
				})
		})
		fmt.Println(r)
		s.Close()

		// MemSilo (shared store).
		db := newDB(workers, nil)
		t := tpcc.Load(db, sc)
		r = bench.Median(cfg.runs, func() bench.Result {
			return bench.Run("MemSilo "+label, workers, cfg.warmup, cfg.seconds,
				func(wid int, stop *atomic.Bool, ops, aborts *atomic.Uint64) {
					cl := tpcc.NewClient(t, sc, db.Store().Worker(wid), wid%sc.Warehouses+1, ccfg, uint64(wid)*29+4)
					for !stop.Load() {
						for {
							err := cl.RunOnce(tpcc.TxnNewOrder)
							if err == core.ErrConflict {
								aborts.Add(1)
								continue
							}
							ops.Add(1)
							break
						}
					}
				})
		})
		fmt.Println(r)
		db.Close()
	}
}

// ---- Figure 9: skew (hotspot) sweep ----

func fig9(cfg config) {
	header("Figure 9: 100% new-order, 4 warehouses in one partition, workers sweep")
	const warehouses = 4
	sc := cfg.scale(warehouses)
	ccfg := tpcc.StandardConfig()
	ccfg.RemoteItemPct = 0

	for _, workers := range cfg.workers {
		// Partitioned-Store: a single partition holding all four
		// warehouses; every transaction takes the same lock, so extra
		// workers cannot help (they serialize, as in the paper).
		ps := tpcc.LoadSinglePartition(sc)
		r := bench.Median(cfg.runs, func() bench.Result {
			return bench.Run("Partitioned-Store", workers, cfg.warmup, cfg.seconds,
				func(wid int, stop *atomic.Bool, ops, aborts *atomic.Uint64) {
					cl := tpcc.NewPartClient(ps, sc, wid%warehouses+1, ccfg, uint64(wid)*37+2)
					cl.SinglePartition = true
					for !stop.Load() {
						cl.NewOrder()
						ops.Add(1)
					}
				})
		})
		fmt.Println(r)

		for _, variant := range []struct {
			name    string
			fastIDs bool
		}{{"MemSilo", false}, {"MemSilo+FastIds", true}} {
			db := newDB(workers, nil)
			t := tpcc.Load(db, sc)
			vcfg := ccfg
			vcfg.FastIDs = variant.fastIDs
			r := bench.Median(cfg.runs, func() bench.Result {
				return bench.Run(variant.name, workers, cfg.warmup, cfg.seconds,
					func(wid int, stop *atomic.Bool, ops, aborts *atomic.Uint64) {
						cl := tpcc.NewClient(t, sc, db.Store().Worker(wid), wid%warehouses+1, vcfg, uint64(wid)*41+8)
						for !stop.Load() {
							for {
								err := cl.RunOnce(tpcc.TxnNewOrder)
								if err == core.ErrConflict {
									aborts.Add(1)
									continue
								}
								ops.Add(1)
								break
							}
						}
					})
			})
			fmt.Println(r)
			db.Close()
		}
	}
}

// ---- Figure 10: effectiveness of snapshot transactions ----

func fig10(cfg config) {
	header("Figure 10 (table): 8 warehouses, 16 workers, 50% new-order + 50% stock-level")
	const warehouses = 8
	workers := 16
	sc := cfg.scale(warehouses)

	for _, variant := range []struct {
		name     string
		snapshot bool
	}{{"MemSilo (snapshot stock-level)", true}, {"MemSilo+NoSS", false}} {
		db := newDB(workers, nil)
		t := tpcc.Load(db, sc)
		ccfg := tpcc.StandardConfig()
		ccfg.SnapshotStockLevel = variant.snapshot
		r := bench.Median(cfg.runs, func() bench.Result {
			return bench.Run(variant.name, workers, cfg.warmup, cfg.seconds,
				func(wid int, stop *atomic.Bool, ops, aborts *atomic.Uint64) {
					cl := tpcc.NewClient(t, sc, db.Store().Worker(wid), wid%warehouses+1, ccfg, uint64(wid)*43+6)
					for !stop.Load() {
						tt := tpcc.TxnNewOrder
						if cl.RNG().Intn(2) == 0 {
							tt = tpcc.TxnStockLevel
						}
						for {
							err := cl.RunOnce(tt)
							if err == core.ErrConflict {
								aborts.Add(1)
								continue
							}
							ops.Add(1)
							break
						}
					}
				})
		})
		fmt.Printf("%-32s txns/sec=%-12.0f aborts/sec=%.0f\n", variant.name, r.TPS(), r.AbortRate())
		db.Close()
	}
}

// ---- Figure 11: factor analysis ----

func fig11(cfg config) {
	header(fmt.Sprintf("Figure 11: factor analysis, TPC-C mix, %d warehouses/workers", cfg.wh))
	workers := cfg.wh
	sc := cfg.scale(cfg.wh)
	ccfg := tpcc.StandardConfig()

	type factor struct {
		name   string
		mutate func(*silo.Options)
	}
	regular := []factor{
		{"Simple", func(o *silo.Options) { o.DisableArena = true; o.DisableOverwrites = true }},
		{"+Allocator", func(o *silo.Options) { o.DisableOverwrites = true }},
		{"+Overwrites (MemSilo)", func(o *silo.Options) {}},
		{"+NoSnapshots", func(o *silo.Options) { o.DisableSnapshots = true }},
		{"+NoGC", func(o *silo.Options) { o.DisableSnapshots = true; o.DisableGC = true }},
	}
	var baseline float64
	fmt.Println("-- Regular group (cumulative, left to right) --")
	for i, f := range regular {
		db := newDB(workers, f.mutate)
		t := tpcc.Load(db, sc)
		r := bench.Median(cfg.runs, func() bench.Result {
			return tpccMixRun(f.name, db.Store(), t, sc, workers, ccfg, cfg, nil)
		})
		if i == 0 {
			baseline = r.TPS()
		}
		fmt.Printf("%-24s txns/sec=%-12.0f relative=%.2f\n", f.name, r.TPS(), r.TPS()/baseline)
		db.Close()
	}

	fmt.Println("-- Persistence group (cumulative, left to right) --")
	type pfactor struct {
		name string
		wcfg *wal.Config
	}
	pfactors := []pfactor{
		{"MemSilo", nil},
		{"+SmallRecs", &wal.Config{Mode: wal.ModeTIDOnly}},
		{"+FullRecs (Silo)", &wal.Config{Mode: wal.ModeFull}},
		{"+Compress", &wal.Config{Mode: wal.ModeFull, Compress: true}},
	}
	baseline = 0
	for i, f := range pfactors {
		s := newStore(workers, nil)
		var m *wal.Manager
		if f.wcfg != nil {
			dir := filepath.Join(cfg.logDir, fmt.Sprintf("fig11-%d", i))
			os.MkdirAll(dir, 0o755)
			w := *f.wcfg
			w.Dir = dir
			w.Loggers = cfg.loggers
			w.Sync = cfg.sync
			var err error
			m, err = wal.Attach(s, w)
			if err != nil {
				panic(err)
			}
		}
		t := tpcc.LoadStore(s, sc)
		if m != nil {
			m.Start()
		}
		r := bench.Median(cfg.runs, func() bench.Result {
			return tpccMixRun(f.name, s, t, sc, workers, ccfg, cfg, m)
		})
		if i == 0 {
			baseline = r.TPS()
		}
		extra := ""
		if m != nil {
			extra = fmt.Sprintf("  logMB=%.1f", float64(m.Stats().BytesWritten.Load())/1e6)
		}
		fmt.Printf("%-24s txns/sec=%-12.0f relative=%.2f%s\n", f.name, r.TPS(), r.TPS()/baseline, extra)
		if m != nil {
			m.Stop()
		}
		s.Close()
	}
}

// ---- §5.6: space overhead of snapshots ----

func spaceOverhead(cfg config) {
	header("§5.6: snapshot space overhead — YCSB 100% RMW")
	wcfg := ycsb.DefaultConfig(cfg.keys)
	wcfg.ReadPct = 0 // every txn is a read-modify-write
	workers := cfg.workers[len(cfg.workers)-1]

	// The paper's 60 s runs cross a snapshot boundary every second. Scale
	// the snapshot cadence so a short run crosses several boundaries and
	// reaches reclamation steady state; otherwise no snapshot versions are
	// ever retained and the measurement is vacuously zero. The overhead
	// ratio scales as (update rate × retention window) / database size —
	// see EXPERIMENTS.md for the comparison against the paper's 3.4%.
	s := newStore(workers, func(o *core.Options) {
		o.EpochInterval = 4 * time.Millisecond
		o.SnapshotK = 2
	})
	tbl := ycsb.LoadSilo(s, wcfg)
	baseBytes := uint64(wcfg.Keys) * uint64(wcfg.ValueSize+32)

	var peak atomic.Uint64
	r := bench.Run("MemSilo 100% RMW", workers, cfg.warmup, cfg.seconds,
		func(wid int, stop *atomic.Bool, ops, aborts *atomic.Uint64) {
			gen := ycsb.NewGenerator(wcfg, uint64(wid)+1)
			w := s.Worker(wid)
			var kb []byte
			n := 0
			for !stop.Load() {
				var ok bool
				ok, kb = ycsb.RunSiloOp(w, tbl, gen.Next(), kb)
				if ok {
					ops.Add(1)
				} else {
					aborts.Add(1)
				}
				if n++; n%1024 == 0 {
					st := s.Stats()
					for {
						cur := peak.Load()
						if st.SnapshotBytesRetained <= cur || peak.CompareAndSwap(cur, st.SnapshotBytesRetained) {
							break
						}
					}
				}
			}
		})
	st := s.Stats()
	fmt.Println(r)
	fmt.Printf("database size ≈ %.1f MB; peak snapshot bytes retained = %.1f MB (%.1f%% overhead)\n",
		float64(baseBytes)/1e6, float64(peak.Load())/1e6, 100*float64(peak.Load())/float64(baseBytes))
	fmt.Printf("snapshot versions created=%d reaped=%d\n", st.SnapshotVersionsCreated, st.SnapshotVersionsReaped)
	s.Close()
}
