// Command silo-bench regenerates every table and figure of the paper's
// evaluation (§5) at laptop scale. Each experiment prints the same rows or
// series the paper plots; absolute numbers depend on hardware (see
// EXPERIMENTS.md), but the shapes — who wins, by what factor, where the
// crossovers fall — are the reproduction target.
//
// Usage:
//
//	silo-bench -exp all
//	silo-bench -exp fig4 -seconds 2 -workers 1,2,4,8
//	silo-bench -exp fig8 -wh 8
//	silo-bench -exp fig11
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

type config struct {
	seconds time.Duration
	warmup  time.Duration
	runs    int
	workers []int
	keys    int
	wh      int
	full    bool
	logDir  string
	loggers int
	sync    bool
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11, space")
		seconds = flag.Float64("seconds", 1.0, "measured seconds per point")
		warmup  = flag.Float64("warmup", 0.25, "warmup seconds per point")
		runs    = flag.Int("runs", 1, "runs per point (median reported)")
		workers = flag.String("workers", "1,2,4,8", "worker counts for sweeps")
		keys    = flag.Int("keys", 200000, "YCSB tree size (paper: 160M)")
		wh      = flag.Int("wh", 8, "warehouses for fixed-size TPC-C experiments (paper: 28)")
		full    = flag.Bool("fullscale", false, "use full TPC-C cardinalities (100k items, 3k customers)")
		logDir  = flag.String("logdir", "", "log directory for persistence experiments (default: temp dir)")
		loggers = flag.Int("loggers", 2, "logger threads for persistence experiments (paper: 4)")
		doSync  = flag.Bool("sync", false, "fsync log writes")
	)
	flag.Parse()

	cfg := config{
		seconds: time.Duration(*seconds * float64(time.Second)),
		warmup:  time.Duration(*warmup * float64(time.Second)),
		runs:    *runs,
		keys:    *keys,
		wh:      *wh,
		full:    *full,
		logDir:  *logDir,
		loggers: *loggers,
		sync:    *doSync,
	}
	for _, part := range strings.Split(*workers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad -workers element %q\n", part)
			os.Exit(2)
		}
		cfg.workers = append(cfg.workers, n)
	}
	if cfg.logDir == "" {
		dir, err := os.MkdirTemp("", "silo-bench-log")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		cfg.logDir = dir
	}

	all := map[string]func(config){
		"fig4":  fig4,
		"fig5":  fig5and6,
		"fig6":  fig5and6,
		"fig7":  fig7,
		"fig8":  fig8,
		"fig9":  fig9,
		"fig10": fig10,
		"fig11": fig11,
		"space": spaceOverhead,
	}
	switch *exp {
	case "all":
		// fig5 covers fig6 (same run, per-core view).
		for _, name := range []string{"fig4", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "space"} {
			all[name](cfg)
		}
	default:
		fn, ok := all[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		fn(cfg)
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}
